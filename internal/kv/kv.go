// Package kv is the serving-layer keyed store of the reproduction: a
// sharded transactional key-value map built on the engine-generic TM
// API. String keys are interned to dense uint64 handles; the key space
// is partitioned across S shards, each backed by its own hash index
// (ds.Index) over arena-allocated t-variables. Transactions on keys of
// different shards touch disjoint t-variables, so on a strictly
// disjoint-access-parallel engine (2pl) they never contend, and on the
// OFTM engines they contend only through the engine's own hot spots —
// the store is the systems-level realization of the paper's
// disjoint-access-parallelism argument: carve the key space so
// independent requests run conflict-free, and make cross-shard
// operations the explicit, measured exception.
//
// Concurrency: a Store is safe for concurrent use by any number of
// goroutines (raw mode) or simulated processes (sim mode; pass the
// *sim.Proc). Every operation is internally a retrying transaction via
// core.Run; multi-key Txn batches are atomic across shards.
package kv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/sim"
)

// ErrCASFailed is returned by Txn when an OpCAS guard did not match:
// the whole batch was rolled back (nothing applied). Single-key CAS
// does not use it — a lone mismatch simply reports swapped=false.
var ErrCASFailed = errors.New("kv: txn aborted by failed CAS guard")

// Store is a sharded transactional key-value store.
type Store struct {
	tm     core.TM
	shards []*shard

	// handles is the intern table (string -> uint64). It is a sync.Map
	// because interning sits on the hot path of every operation across
	// all shards: in the steady state (key already interned) Load is a
	// lock-free read, so the table adds no store-wide contended word —
	// which a plain RWMutex reader count would be, defeating exactly
	// the disjointness the sharding buys. The mutex serializes only
	// first-time assignments.
	handles  sync.Map
	mu       sync.Mutex
	nHandles uint64

	// txns counts committed store operations (each one transaction);
	// crossShard counts those that touched more than one shard. Their
	// ratio is the workload's cross-shard fraction — the quantity a
	// deployment tunes its partitioning to minimize.
	txns       atomic.Int64
	crossShard atomic.Int64

	// sessions pools the internal default sessions behind the
	// session-less Store.Txn / Store.GetMulti compatibility methods, so
	// callers without their own Session still reuse plan scratch.
	sessions sync.Pool
}

// shard is one key-space partition: a private hash index plus stats.
type shard struct {
	idx    *ds.Index
	ops    atomic.Int64 // committed operations that touched this shard
	aborts atomic.Int64 // aborted attempts (retries) charged to this shard
}

// New allocates a store with the given shard count and buckets per
// shard (both rounded up to at least 1) on tm. The t-variables are
// created on tm, so a store attached to a sim-mode engine records like
// any other transactional structure.
func New(tm core.TM, shards, bucketsPerShard int) *Store {
	if shards < 1 {
		shards = 1
	}
	if bucketsPerShard < 1 {
		bucketsPerShard = 1
	}
	s := &Store{tm: tm}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, &shard{idx: ds.NewIndex(tm, fmt.Sprintf("kv.s%d", i), bucketsPerShard)})
	}
	s.sessions.New = func() any { return s.NewSession() }
	return s
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// intern returns the stable uint64 handle for key, assigning the next
// dense handle on first use. Handles are never reclaimed: the store
// follows the ds arena discipline (the paper's scope excludes epoch
// reclamation), so the handle table grows with the set of distinct
// keys ever touched.
func (s *Store) intern(key string) uint64 {
	if h, ok := s.handles.Load(key); ok {
		return h.(uint64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.handles.Load(key); ok {
		return h.(uint64)
	}
	s.nHandles++
	s.handles.Store(key, s.nHandles)
	return s.nHandles
}

// shardOf maps a handle to its shard. The multiplier differs from the
// bucket hash inside ds.Index (0x9E37...) on purpose: with both
// derived from the same product, power-of-two shard and bucket counts
// would correlate and leave most buckets of every shard unused.
func (s *Store) shardOf(h uint64) int {
	return int((h * 0xBF58476D1CE4E5B9) >> 33 % uint64(len(s.shards)))
}

// record charges a finished single-shard operation to sh: attempts-1
// aborted tries, and one committed op if it succeeded.
func (sh *shard) record(attempts int, committed bool) {
	if attempts > 1 {
		sh.aborts.Add(int64(attempts - 1))
	}
	if committed {
		sh.ops.Add(1)
	}
}

func (s *Store) finish(committed bool, shardsTouched int) {
	if !committed {
		return
	}
	s.txns.Add(1)
	if shardsTouched > 1 {
		s.crossShard.Add(1)
	}
}

// single runs one single-key (hence single-shard) operation: intern,
// shard selection, the retrying transaction, and the stats accounting
// shared by Get/Put/Delete/CAS. fn runs once per attempt.
func (s *Store) single(p *sim.Proc, key string, opts []core.RunOption, fn func(tx core.Tx, idx *ds.Index, h uint64) error) error {
	h := s.intern(key)
	sh := s.shards[s.shardOf(h)]
	attempts := 0
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		attempts++
		return fn(tx, sh.idx, h)
	}, opts...)
	sh.record(attempts, err == nil)
	s.finish(err == nil, 1)
	return err
}

// Get returns the value stored at key and whether it is present.
func (s *Store) Get(p *sim.Proc, key string, opts ...core.RunOption) (uint64, bool, error) {
	var val uint64
	var ok bool
	err := s.single(p, key, opts, func(tx core.Tx, idx *ds.Index, h uint64) error {
		var err error
		val, ok, err = idx.Lookup(tx, h)
		return err
	})
	return val, ok, err
}

// Put stores key -> val, reporting whether the key was new.
func (s *Store) Put(p *sim.Proc, key string, val uint64, opts ...core.RunOption) (bool, error) {
	var created bool
	var spare uint64
	err := s.single(p, key, opts, func(tx core.Tx, idx *ds.Index, h uint64) error {
		var err error
		created, err = idx.Insert(tx, h, val, &spare)
		return err
	})
	return created, err
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(p *sim.Proc, key string, opts ...core.RunOption) (bool, error) {
	var removed bool
	err := s.single(p, key, opts, func(tx core.Tx, idx *ds.Index, h uint64) error {
		var err error
		removed, err = idx.Remove(tx, h)
		return err
	})
	return removed, err
}

// CAS atomically replaces the value at key with new iff the key is
// present and currently holds old. It reports (swapped, existed):
// (false, false) for a missing key, (false, true) on value mismatch.
func (s *Store) CAS(p *sim.Proc, key string, old, new uint64, opts ...core.RunOption) (swapped, existed bool, err error) {
	err = s.single(p, key, opts, func(tx core.Tx, idx *ds.Index, h uint64) error {
		var err error
		swapped, existed, err = idx.CompareAndSwap(tx, h, old, new)
		return err
	})
	return swapped, existed, err
}

// OpKind enumerates the operations a Txn batch may contain.
type OpKind uint8

const (
	// OpGet reads a key.
	OpGet OpKind = iota
	// OpPut stores Val at Key.
	OpPut
	// OpDelete removes Key.
	OpDelete
	// OpCAS replaces Old with Val at Key if it matches.
	OpCAS
)

// Op is one operation of an atomic multi-key batch. Key names the
// target; a nonzero Handle (obtained from Session.Handle /
// Session.HandleBytes of the same store) pre-resolves it and skips the
// intern lookup — the wire server's allocation-free path, where ops
// carry only handles and Key stays empty.
type Op struct {
	Kind OpKind
	Key  string
	Val  uint64 // Put value / CAS new value
	Old  uint64 // CAS expected value
	// Handle, when nonzero, is Key's pre-interned handle. Handles are
	// assigned from 1, so zero always means "resolve Key".
	Handle uint64
}

// OpResult is the outcome of one Op, in batch order.
type OpResult struct {
	// Val is the value read (OpGet) — zero when absent.
	Val uint64
	// Found reports key presence: the Get hit, the Delete removed,
	// the CAS found the key; for Put it reports the key was new.
	Found bool
	// Swapped reports OpCAS success.
	Swapped bool
}

// Txn executes ops as one atomic transaction spanning any number of
// shards, returning per-op results in batch order. A batch containing
// no writes (all OpGet) is a read-only transaction and commits on the
// engines' validation-free read-only path — the snapshot fast path.
//
// OpCAS acts as a guard: if its expected value does not match (or the
// key is missing), the entire batch rolls back and Txn returns
// ErrCASFailed — conditional multi-key updates are all-or-nothing, so
// a CAS-pair transfer can never half-apply.
//
// Txn runs on a pooled internal session (the plan scratch is reused
// across calls); callers on a hot path should hold their own Session,
// whose Txn also reuses the result slice.
func (s *Store) Txn(p *sim.Proc, ops []Op, opts ...core.RunOption) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	se := s.sessions.Get().(*Session)
	res, err := se.Txn(p, ops, opts...)
	var out []OpResult
	if err == nil {
		// Copy out of the session scratch: the pooled session may be
		// reused by any goroutine the moment it is returned.
		out = make([]OpResult, len(res))
		copy(out, res)
	}
	s.sessions.Put(se)
	return out, err
}

// Lookup is one result of GetMulti.
type Lookup struct {
	Val   uint64
	Found bool
}

// GetMulti reads any number of keys in one read-only transaction — a
// consistent snapshot across shards. Read-only transactions serialize
// at their snapshot timestamp and commit without validation on the
// versioned engines (dstm, nztm), so this is the cheap way to take
// cross-shard snapshots under write traffic.
func (s *Store) GetMulti(p *sim.Proc, keys []string, opts ...core.RunOption) ([]Lookup, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	se := s.sessions.Get().(*Session)
	res, err := se.GetMulti(p, keys, opts...)
	var out []Lookup
	if err == nil {
		out = make([]Lookup, len(res))
		copy(out, res)
	}
	s.sessions.Put(se)
	return out, err
}

// Len counts all entries atomically across every shard (a long
// read-only transaction using the step-lean per-bucket counting path).
func (s *Store) Len(p *sim.Proc, opts ...core.RunOption) (int, error) {
	var n int
	attempts := 0
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		attempts++
		n = 0
		for _, sh := range s.shards {
			c, err := sh.idx.Count(tx)
			if err != nil {
				return err
			}
			n += c
		}
		return nil
	}, opts...)
	committed := err == nil
	for _, sh := range s.shards {
		sh.record(attempts, committed)
	}
	s.finish(committed, len(s.shards))
	return n, err
}

// ShardStats is the per-shard counter snapshot.
type ShardStats struct {
	Ops    int64 // committed operations that touched the shard
	Aborts int64 // aborted attempts (retries) charged to the shard
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Shards     []ShardStats
	Txns       int64 // committed store transactions
	CrossShard int64 // ...of which touched more than one shard
}

// CrossShardRatio returns the fraction of committed transactions that
// spanned shards (0 when nothing committed).
func (st Stats) CrossShardRatio() float64 {
	if st.Txns == 0 {
		return 0
	}
	return float64(st.CrossShard) / float64(st.Txns)
}

// Ops sums committed per-shard operation counts.
func (st Stats) Ops() int64 {
	var n int64
	for _, s := range st.Shards {
		n += s.Ops
	}
	return n
}

// Aborts sums per-shard aborted attempts.
func (st Stats) Aborts() int64 {
	var n int64
	for _, s := range st.Shards {
		n += s.Aborts
	}
	return n
}

// Stats snapshots the store counters. The snapshot is not atomic with
// respect to concurrent operations (counters advance independently);
// it is meant for reporting, not invariants.
func (s *Store) Stats() Stats {
	st := Stats{
		Shards:     make([]ShardStats, len(s.shards)),
		Txns:       s.txns.Load(),
		CrossShard: s.crossShard.Load(),
	}
	for i, sh := range s.shards {
		st.Shards[i] = ShardStats{Ops: sh.ops.Load(), Aborts: sh.aborts.Load()}
	}
	return st
}
