package kv

import "repro/internal/core"

// ApplyEffects applies a run of shipped WAL-record write effects to the
// live store as one atomic transaction — the replication replica's
// ingest path (internal/repl). Effects are absolute (put this value /
// delete this key) and applied in stream order, so replaying any prefix
// of the record stream — including records a snapshot already covers —
// is idempotent prefix-repair, exactly like startup recovery. Deletes
// of absent keys are no-ops; the batch goes through the normal
// transactional path, so replica reads running concurrently see either
// the state before the batch or after it, never a torn middle.
func (se *Session) ApplyEffects(effects []Effect, opts ...core.RunOption) error {
	if len(effects) == 0 {
		return nil
	}
	se.aops = se.aops[:0]
	for i := range effects {
		e := &effects[i]
		if e.Del {
			se.aops = append(se.aops, Op{Kind: OpDelete, Handle: se.intern(e.Key)})
		} else {
			se.aops = append(se.aops, Op{Kind: OpPut, Handle: se.intern(e.Key), Val: e.Val})
		}
	}
	_, err := se.txn(nil, se.aops, false, opts)
	return err
}
