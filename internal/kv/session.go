package kv

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Session is a store handle owned by one goroutine — one per server
// connection or bench worker. It fronts the store's global intern
// table with a private handle cache and owns the reusable execution
// scratch (sorted plan, result slice, GetMulti op buffer), so that in
// the steady state — keys already interned, batch shapes already seen
// — Txn, GetMulti and the single-key operations run without heap
// allocation.
//
// The private handle cache needs no invalidation protocol: handles are
// never reclaimed (the store follows the ds arena discipline), so an
// entry copied out of the global table stays correct forever. The
// cache can only ever be *behind* the global table, never wrong.
//
// A Session is NOT safe for concurrent use. Any number of sessions may
// share one Store concurrently. Result slices returned by Txn and
// GetMulti are owned by the session and valid only until its next
// operation.
type Session struct {
	s     *Store
	cache map[string]uint64

	pl      txnPlan
	results []OpResult
	ops     []Op // batch being executed (set for the duration of a txn)
	mops    []Op // GetMulti scratch batch
	looks   []Lookup
	op1     [1]Op
	aops    []Op     // ApplyEffects scratch batch (replication ingest)
	effects []Effect // commit-hook scratch (reused across transactions)
	locks   []int    // shard indices locked for commit ordering (reused)

	attempts int
	guard    bool // OpCAS mismatch aborts the batch (Txn) vs reports (Do)

	// runFn is the per-attempt closure, allocated once so repeated
	// transactions do not re-capture it.
	runFn func(core.Tx) error
}

// NewSession returns a fresh session on the store.
func (s *Store) NewSession() *Session {
	se := &Session{s: s, cache: make(map[string]uint64)}
	se.runFn = se.attempt
	return se
}

// Store returns the underlying store.
func (se *Session) Store() *Store { return se.s }

// intern resolves key through the session cache, falling back to (and
// then caching) the store's global intern table.
func (se *Session) intern(key string) uint64 {
	if h, ok := se.cache[key]; ok {
		return h
	}
	h := se.s.intern(key)
	se.cache[key] = h
	return h
}

// Handle returns the stable handle for key, interning it on first use.
// Handles are nonzero; an Op carrying a nonzero Handle skips key
// resolution entirely.
func (se *Session) Handle(key string) uint64 { return se.intern(key) }

// HandleBytes is Handle for a byte-slice key (the wire-protocol hot
// path). A cache hit performs no allocation; only the first sighting
// of a key materializes the string.
func (se *Session) HandleBytes(key []byte) uint64 {
	if h, ok := se.cache[string(key)]; ok {
		return h
	}
	k := string(key)
	h := se.s.intern(k)
	se.cache[k] = h
	return h
}

// attempt executes the planned batch once inside tx. It is the body of
// every session transaction (installed once as se.runFn).
func (se *Session) attempt(tx core.Tx) error {
	se.attempts++
	s, ops, pl := se.s, se.ops, &se.pl
	for _, i := range pl.order {
		op := &ops[i]
		idx := s.shards[pl.shards[i]].idx
		h := pl.handles[i]
		res := &se.results[i]
		*res = OpResult{}
		var err error
		switch op.Kind {
		case OpGet:
			res.Val, res.Found, err = idx.Lookup(tx, h)
		case OpPut:
			res.Found, err = idx.Insert(tx, h, op.Val, &pl.spares[i])
		case OpDelete:
			res.Found, err = idx.Remove(tx, h)
		case OpCAS:
			res.Swapped, res.Found, err = idx.CompareAndSwap(tx, h, op.Old, op.Val)
			if err == nil && !res.Swapped && se.guard {
				return ErrCASFailed
			}
		default:
			return fmt.Errorf("kv: unknown op kind %d", op.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// txn plans and runs ops as one transaction, filling se.results.
func (se *Session) txn(p *sim.Proc, ops []Op, guard bool, opts []core.RunOption) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	s := se.s
	se.pl.fill(s, se, ops)
	// Commit-order locks (see shard.mu): only when a hook is installed
	// and the batch can produce write effects. Taken in ascending shard
	// order (the plan order is sorted by shard), so crossing batches
	// cannot deadlock; held across engine commit + hook so the hook
	// sees commits in serialization order.
	if s.hook != nil && hasWrites(ops) {
		se.lockShards(len(ops))
		defer se.unlockShards()
	}
	se.results = grown(se.results, len(ops))
	se.ops = ops
	se.guard = guard
	se.attempts = 0
	err := core.Run(s.tm, p, se.runFn, opts...)
	se.ops = nil

	pl := &se.pl
	distinct := 0
	for i := range pl.touched {
		pl.touched[i] = false
	}
	for _, si := range pl.shards[:len(ops)] {
		if !pl.touched[si] {
			pl.touched[si] = true
			distinct++
		}
	}
	committed := err == nil
	for si, t := range pl.touched {
		if !t {
			continue
		}
		s.shards[si].record(se.attempts, committed)
	}
	s.finish(committed, distinct)
	if err != nil {
		return nil, err
	}
	if s.hook != nil {
		if herr := se.runHook(ops); herr != nil {
			return nil, herr
		}
	}
	return se.results, nil
}

// runHook renders the committed batch's write effects into the
// session's reusable scratch (program order — same-key ops replay in
// the order they applied) and hands them to the store's commit hook.
// No-op batches (pure reads, missed deletes, failed unguarded CAS)
// never reach the hook, so read traffic stays hook-free.
func (se *Session) runHook(ops []Op) error {
	se.effects = se.effects[:0]
	s, pl := se.s, &se.pl
	for i := range ops {
		key, _ := s.KeyOf(pl.handles[i])
		switch ops[i].Kind {
		case OpPut:
			se.effects = append(se.effects, Effect{Key: key, Val: ops[i].Val})
		case OpDelete:
			if se.results[i].Found {
				se.effects = append(se.effects, Effect{Key: key, Del: true})
			}
		case OpCAS:
			if se.results[i].Swapped {
				se.effects = append(se.effects, Effect{Key: key, Val: ops[i].Val})
			}
		}
	}
	if len(se.effects) == 0 {
		return nil
	}
	err := s.hook(se.effects)
	// Dirty-epoch bumps happen after the hook call — the hook assigned
	// the batch's log sequence — and still inside the commit-order
	// critical section, so a snapshot cut that reads its cut sequence
	// and then the epochs under the shard locks observes the bump of
	// every record at or before the cut (see Store.DirtyEpochLocked).
	// Re-running the effect conditions is allocation-free; a bump on a
	// hook error is harmless over-marking (the WAL is latched anyway).
	for i := range ops {
		switch ops[i].Kind {
		case OpPut:
			s.shards[pl.shards[i]].epoch.Add(1)
		case OpDelete:
			if se.results[i].Found {
				s.shards[pl.shards[i]].epoch.Add(1)
			}
		case OpCAS:
			if se.results[i].Swapped {
				s.shards[pl.shards[i]].epoch.Add(1)
			}
		}
	}
	return err
}

// Txn executes ops as one atomic transaction with Store.Txn semantics
// (stable same-key order, OpCAS guards abort the whole batch with
// ErrCASFailed), reusing the session's plan and result scratch: on a
// repeat batch shape no allocation is performed. The returned slice is
// owned by the session and valid until its next operation.
func (se *Session) Txn(p *sim.Proc, ops []Op, opts ...core.RunOption) ([]OpResult, error) {
	return se.txn(p, ops, true, opts)
}

// Do executes one single-key operation outside any batch, with the
// single-op semantics of the Store methods — in particular an OpCAS
// mismatch reports Swapped=false instead of aborting with ErrCASFailed.
func (se *Session) Do(p *sim.Proc, op Op, opts ...core.RunOption) (OpResult, error) {
	se.op1[0] = op
	res, err := se.txn(p, se.op1[:], false, opts)
	if err != nil {
		return OpResult{}, err
	}
	return res[0], nil
}

// Get returns the value stored at key and whether it is present.
func (se *Session) Get(p *sim.Proc, key string, opts ...core.RunOption) (uint64, bool, error) {
	r, err := se.Do(p, Op{Kind: OpGet, Handle: se.intern(key)}, opts...)
	return r.Val, r.Found, err
}

// Put stores key -> val, reporting whether the key was new.
func (se *Session) Put(p *sim.Proc, key string, val uint64, opts ...core.RunOption) (bool, error) {
	r, err := se.Do(p, Op{Kind: OpPut, Handle: se.intern(key), Val: val}, opts...)
	return r.Found, err
}

// Delete removes key, reporting whether it was present.
func (se *Session) Delete(p *sim.Proc, key string, opts ...core.RunOption) (bool, error) {
	r, err := se.Do(p, Op{Kind: OpDelete, Handle: se.intern(key)}, opts...)
	return r.Found, err
}

// CAS atomically replaces the value at key with new iff it currently
// holds old, reporting (swapped, existed) like Store.CAS.
func (se *Session) CAS(p *sim.Proc, key string, old, new uint64, opts ...core.RunOption) (swapped, existed bool, err error) {
	r, err := se.Do(p, Op{Kind: OpCAS, Handle: se.intern(key), Old: old, Val: new}, opts...)
	return r.Swapped, r.Found, err
}

// GetMulti reads keys in one read-only transaction (a consistent
// cross-shard snapshot) into the session's reusable lookup buffer. The
// returned slice is valid until the session's next operation.
func (se *Session) GetMulti(p *sim.Proc, keys []string, opts ...core.RunOption) ([]Lookup, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	se.mops = grown(se.mops, len(keys))
	for i, k := range keys {
		se.mops[i] = Op{Kind: OpGet, Handle: se.intern(k)}
	}
	res, err := se.txn(p, se.mops, true, opts)
	if err != nil {
		return nil, err
	}
	se.looks = grown(se.looks, len(keys))
	for i, r := range res {
		se.looks[i] = Lookup{Val: r.Val, Found: r.Found}
	}
	return se.looks, nil
}

// hasWrites reports whether the batch contains any op that could
// produce a write effect.
func hasWrites(ops []Op) bool {
	for i := range ops {
		if ops[i].Kind != OpGet {
			return true
		}
	}
	return false
}

// lockShards takes the commit-order locks of the first n planned ops'
// shards, ascending and deduplicated (the plan order is shard-sorted,
// so duplicates are consecutive runs). Allocation-free once the locks
// slice is warm.
func (se *Session) lockShards(n int) {
	pl := &se.pl
	se.locks = se.locks[:0]
	for _, i := range pl.order[:n] {
		si := pl.shards[i]
		if k := len(se.locks); k == 0 || se.locks[k-1] != si {
			se.locks = append(se.locks, si)
		}
	}
	for _, si := range se.locks {
		se.s.shards[si].mu.Lock()
	}
}

func (se *Session) unlockShards() {
	for _, si := range se.locks {
		se.s.shards[si].mu.Unlock()
	}
	se.locks = se.locks[:0]
}

// interner resolves a key to its handle; implemented by *Store (global
// table) and *Session (private cache in front of it).
type interner interface {
	intern(key string) uint64
}

// txnPlan is the reusable sorted execution plan of one batch. Its
// slices are grown in place and never shrink, so a session replaying
// the same batch shape plans without allocating.
type txnPlan struct {
	handles []uint64
	shards  []int // shard index per op
	order   []int // op indices sorted by (shard, handle), stable
	spares  []uint64
	touched []bool
}

// fill interns every key (ops carrying a nonzero pre-resolved Handle
// skip the lookup) and sorts the execution order by (shard, handle).
// Accessing t-variables in one global order makes the batch
// deadlock-free on lock-based engines (2pl acquires encounter-time
// exclusive locks; two crossing batches would otherwise spin each
// other into abort storms). The sort is stable, so multiple ops on the
// same key keep their program order and batch semantics are: ops on
// distinct keys are order-independent (the batch is atomic), ops on
// the same key apply in order.
func (pl *txnPlan) fill(s *Store, in interner, ops []Op) {
	n := len(ops)
	pl.handles = grown(pl.handles, n)
	pl.shards = grown(pl.shards, n)
	pl.order = grown(pl.order, n)
	pl.spares = grown(pl.spares, n)
	pl.touched = grown(pl.touched, len(s.shards))
	for i := range ops {
		h := ops[i].Handle
		if h == 0 {
			h = in.intern(ops[i].Key)
		}
		pl.handles[i] = h
		pl.shards[i] = s.shardOf(h)
		pl.order[i] = i
		// A spare node handle must never outlive its batch: a committed
		// insert links the node into a bucket list, and reusing it would
		// splice a live node a second time.
		pl.spares[i] = 0
	}
	pl.sortOrder()
}

// insertionSortMax bounds the insertion sort: wire batches (capped by
// Config.Batch / Config.MaxMultiOps) stay under it, but Store.Txn and
// GetMulti are public API with uncapped batch sizes, where O(n²)
// would bite.
const insertionSortMax = 256

// sortOrder stable-sorts pl.order by (shard, handle). Small batches —
// every wire batch — use an allocation-free insertion sort, which
// beats sort.SliceStable and, unlike it, does not allocate the
// interface header and closure on every call. Larger batches fall
// back to sort.Stable on the plan itself (*txnPlan implements
// sort.Interface over order; a pointer conversion, so still no
// per-call allocation) to keep the library API's asymptotics.
func (pl *txnPlan) sortOrder() {
	order := pl.order
	if len(order) > insertionSortMax {
		sort.Stable(pl)
		return
	}
	for i := 1; i < len(order); i++ {
		oi := order[i]
		j := i
		for j > 0 && pl.planLess(oi, order[j-1]) {
			order[j] = order[j-1]
			j--
		}
		order[j] = oi
	}
}

// sort.Interface over the order slice, for the large-batch fallback.
func (pl *txnPlan) Len() int           { return len(pl.order) }
func (pl *txnPlan) Less(a, b int) bool { return pl.planLess(pl.order[a], pl.order[b]) }
func (pl *txnPlan) Swap(a, b int)      { pl.order[a], pl.order[b] = pl.order[b], pl.order[a] }

func (pl *txnPlan) planLess(a, b int) bool {
	if pl.shards[a] != pl.shards[b] {
		return pl.shards[a] < pl.shards[b]
	}
	return pl.handles[a] < pl.handles[b]
}

// grown returns s resized to n entries, reusing its backing array when
// capacity allows. Contents are unspecified — callers overwrite.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
