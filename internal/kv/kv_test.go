package kv_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/kv"
	"repro/internal/locktm"
	"repro/internal/model"
	"repro/internal/nztm"
	"repro/internal/sim"
)

func engines() map[string]func() core.TM {
	return map[string]func() core.TM{
		"dstm":   func() core.TM { return dstm.New() },
		"nztm":   func() core.TM { return nztm.New() },
		"2pl":    func() core.TM { return locktm.NewTwoPhase() },
		"tl2":    func() core.TM { return locktm.NewGlobalClock() },
		"coarse": func() core.TM { return locktm.NewCoarse() },
	}
}

func TestStoreBasic(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			s := kv.New(mk(), 4, 4)
			if created, err := s.Put(nil, "alpha", 1); err != nil || !created {
				t.Fatalf("put alpha = (%v, %v), want (true, nil)", created, err)
			}
			if created, err := s.Put(nil, "alpha", 2); err != nil || created {
				t.Fatalf("re-put alpha = (%v, %v), want (false, nil)", created, err)
			}
			if v, ok, err := s.Get(nil, "alpha"); err != nil || !ok || v != 2 {
				t.Fatalf("get alpha = (%d, %v, %v), want (2, true, nil)", v, ok, err)
			}
			if _, ok, err := s.Get(nil, "beta"); err != nil || ok {
				t.Fatalf("get beta = (_, %v, %v), want absent", ok, err)
			}
			if sw, ex, err := s.CAS(nil, "alpha", 2, 5); err != nil || !sw || !ex {
				t.Fatalf("cas alpha = (%v, %v, %v), want (true, true, nil)", sw, ex, err)
			}
			if sw, ex, err := s.CAS(nil, "alpha", 2, 9); err != nil || sw || !ex {
				t.Fatalf("stale cas alpha = (%v, %v, %v), want (false, true, nil)", sw, ex, err)
			}
			if sw, ex, err := s.CAS(nil, "beta", 0, 1); err != nil || sw || ex {
				t.Fatalf("cas missing = (%v, %v, %v), want (false, false, nil)", sw, ex, err)
			}
			if removed, err := s.Delete(nil, "alpha"); err != nil || !removed {
				t.Fatalf("delete alpha = (%v, %v), want (true, nil)", removed, err)
			}
			if removed, err := s.Delete(nil, "alpha"); err != nil || removed {
				t.Fatalf("re-delete alpha = (%v, %v), want (false, nil)", removed, err)
			}
			for i := 0; i < 32; i++ {
				if _, err := s.Put(nil, fmt.Sprintf("k%03d", i), uint64(i)); err != nil {
					t.Fatalf("put k%03d: %v", i, err)
				}
			}
			if n, err := s.Len(nil); err != nil || n != 32 {
				t.Fatalf("len = (%d, %v), want (32, nil)", n, err)
			}
			looks, err := s.GetMulti(nil, []string{"k001", "nope", "k031"})
			if err != nil {
				t.Fatalf("getmulti: %v", err)
			}
			want := []kv.Lookup{{Val: 1, Found: true}, {}, {Val: 31, Found: true}}
			for i, l := range looks {
				if l != want[i] {
					t.Fatalf("getmulti[%d] = %+v, want %+v", i, l, want[i])
				}
			}
		})
	}
}

func TestTxnBatchSemantics(t *testing.T) {
	s := kv.New(dstm.New(), 4, 4)
	// Mixed batch across shards, including two ops on one key (stable
	// order: the Get after the Put sees the put value).
	res, err := s.Txn(nil, []kv.Op{
		{Kind: kv.OpPut, Key: "x", Val: 10},
		{Kind: kv.OpPut, Key: "y", Val: 20},
		{Kind: kv.OpGet, Key: "x"},
		{Kind: kv.OpDelete, Key: "missing"},
	})
	if err != nil {
		t.Fatalf("txn: %v", err)
	}
	if !res[0].Found || !res[1].Found {
		t.Fatalf("puts not reported new: %+v", res)
	}
	if !res[2].Found || res[2].Val != 10 {
		t.Fatalf("get x in batch = %+v, want (10, true)", res[2])
	}
	if res[3].Found {
		t.Fatalf("delete missing reported found")
	}

	// A failed CAS guard rolls back the whole batch.
	_, err = s.Txn(nil, []kv.Op{
		{Kind: kv.OpPut, Key: "x", Val: 99},
		{Kind: kv.OpCAS, Key: "y", Old: 777, Val: 1},
	})
	if !errors.Is(err, kv.ErrCASFailed) {
		t.Fatalf("guarded txn err = %v, want ErrCASFailed", err)
	}
	if v, _, _ := s.Get(nil, "x"); v != 10 {
		t.Fatalf("x = %d after aborted batch, want 10 (rollback)", v)
	}

	st := s.Stats()
	if st.Txns == 0 || st.CrossShard == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
	if st.CrossShardRatio() <= 0 || st.CrossShardRatio() > 1 {
		t.Fatalf("cross-shard ratio out of range: %f", st.CrossShardRatio())
	}
}

// TestCASSoak is the race-mode concurrent soak: N goroutines hammer
// CAS-increment counters spread across shards; every successful swap
// is counted locally, and the per-key totals must equal the final
// values — no lost or duplicated increments.
func TestCASSoak(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			const (
				goroutines = 8
				keys       = 16
				increments = 150
			)
			s := kv.New(mk(), 8, 4)
			keyName := func(k int) string { return fmt.Sprintf("ctr%02d", k) }
			for k := 0; k < keys; k++ {
				if _, err := s.Put(nil, keyName(k), 0); err != nil {
					t.Fatalf("seed put: %v", err)
				}
			}
			succ := make([][]int64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				succ[g] = make([]int64, keys)
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g) + 1))
					done := 0
					for done < increments {
						k := rng.Intn(keys)
						v, ok, err := s.Get(nil, keyName(k))
						if err != nil || !ok {
							panic(fmt.Sprintf("get: ok=%v err=%v", ok, err))
						}
						swapped, existed, err := s.CAS(nil, keyName(k), v, v+1)
						if err != nil {
							panic(err)
						}
						if !existed {
							panic("counter vanished")
						}
						if swapped {
							succ[g][k]++
							done++
						}
					}
				}()
			}
			wg.Wait()
			var total int64
			for k := 0; k < keys; k++ {
				var want int64
				for g := 0; g < goroutines; g++ {
					want += succ[g][k]
				}
				v, ok, err := s.Get(nil, keyName(k))
				if err != nil || !ok {
					t.Fatalf("final get %d: ok=%v err=%v", k, ok, err)
				}
				if int64(v) != want {
					t.Fatalf("counter %d = %d, want %d (successful swaps)", k, v, want)
				}
				total += want
			}
			if total != goroutines*increments {
				t.Fatalf("total increments %d, want %d", total, goroutines*increments)
			}
			if n, err := s.Len(nil); err != nil || n != keys {
				t.Fatalf("len = (%d, %v), want (%d, nil)", n, err, keys)
			}
			st := s.Stats()
			if st.Ops() == 0 {
				t.Fatalf("no ops recorded: %+v", st)
			}
		})
	}
}

// TestTxnTransferSoak checks multi-key atomicity under concurrency:
// CAS-pair transfers between keys on different shards must conserve
// the total (all-or-nothing batches).
func TestTxnTransferSoak(t *testing.T) {
	for _, name := range []string{"dstm", "nztm", "2pl"} {
		mk := engines()[name]
		t.Run(name, func(t *testing.T) {
			const (
				goroutines = 8
				accounts   = 8
				transfers  = 100
				initial    = 1000
			)
			s := kv.New(mk(), 8, 4)
			keyName := func(k int) string { return fmt.Sprintf("acct%02d", k) }
			var akeys []string
			for k := 0; k < accounts; k++ {
				akeys = append(akeys, keyName(k))
				if _, err := s.Put(nil, keyName(k), initial); err != nil {
					t.Fatalf("seed: %v", err)
				}
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g) + 99))
					done := 0
					for done < transfers {
						from := rng.Intn(accounts)
						to := (from + 1 + rng.Intn(accounts-1)) % accounts
						cur, err := s.GetMulti(nil, []string{keyName(from), keyName(to)})
						if err != nil {
							panic(err)
						}
						if cur[0].Val == 0 {
							continue
						}
						_, err = s.Txn(nil, []kv.Op{
							{Kind: kv.OpCAS, Key: keyName(from), Old: cur[0].Val, Val: cur[0].Val - 1},
							{Kind: kv.OpCAS, Key: keyName(to), Old: cur[1].Val, Val: cur[1].Val + 1},
						})
						if errors.Is(err, kv.ErrCASFailed) {
							continue // stale snapshot; retry with fresh reads
						}
						if err != nil {
							panic(err)
						}
						done++
					}
				}()
			}
			wg.Wait()
			looks, err := s.GetMulti(nil, akeys)
			if err != nil {
				t.Fatalf("final snapshot: %v", err)
			}
			var sum uint64
			for _, l := range looks {
				sum += l.Val
			}
			if sum != accounts*initial {
				t.Fatalf("sum = %d, want %d (money not conserved)", sum, accounts*initial)
			}
		})
	}
}

// TestSessionBasic pins the Session API semantics: single ops mirror
// the Store methods (including single-CAS reporting instead of
// ErrCASFailed), Txn/GetMulti results live in session-owned scratch
// that the next operation overwrites, and handles interoperate with
// ops issued through the Store directly.
func TestSessionBasic(t *testing.T) {
	s := kv.New(nztm.New(), 4, 4)
	se := s.NewSession()

	if created, err := se.Put(nil, "alpha", 1); err != nil || !created {
		t.Fatalf("put = (%v, %v), want (true, nil)", created, err)
	}
	if v, ok, err := se.Get(nil, "alpha"); err != nil || !ok || v != 1 {
		t.Fatalf("get = (%d, %v, %v), want (1, true, nil)", v, ok, err)
	}
	// Store methods and session methods address the same keys.
	if v, ok, _ := s.Get(nil, "alpha"); !ok || v != 1 {
		t.Fatalf("store get after session put = (%d, %v)", v, ok)
	}
	// Single CAS reports a mismatch, it does not abort.
	if sw, ex, err := se.CAS(nil, "alpha", 99, 5); err != nil || sw || !ex {
		t.Fatalf("stale cas = (%v, %v, %v), want (false, true, nil)", sw, ex, err)
	}
	// ...but an OpCAS guard inside Txn does.
	if _, err := se.Txn(nil, []kv.Op{
		{Kind: kv.OpPut, Key: "beta", Val: 7},
		{Kind: kv.OpCAS, Key: "alpha", Old: 99, Val: 5},
	}); !errors.Is(err, kv.ErrCASFailed) {
		t.Fatalf("guarded txn err = %v, want ErrCASFailed", err)
	}
	if _, ok, _ := se.Get(nil, "beta"); ok {
		t.Fatalf("beta exists after rolled-back guarded txn")
	}
	// Handle is stable and pre-resolves ops.
	h := se.Handle("alpha")
	if h == 0 || h != se.HandleBytes([]byte("alpha")) {
		t.Fatalf("handle not stable: %d vs %d", h, se.HandleBytes([]byte("alpha")))
	}
	res, err := se.Txn(nil, []kv.Op{{Kind: kv.OpGet, Handle: h}})
	if err != nil || !res[0].Found || res[0].Val != 1 {
		t.Fatalf("txn by handle = (%+v, %v)", res, err)
	}
	// Result scratch is overwritten by the next session operation.
	first := res[0]
	if _, err := se.Txn(nil, []kv.Op{{Kind: kv.OpDelete, Handle: h}}); err != nil {
		t.Fatalf("delete txn: %v", err)
	}
	if res[0] == first {
		t.Fatalf("session results were not reused (doc contract: valid until next op)")
	}
	if lk, err := se.GetMulti(nil, []string{"alpha", "missing"}); err != nil || lk[0].Found || lk[1].Found {
		t.Fatalf("getmulti after delete = (%+v, %v)", lk, err)
	}
	if r, err := se.Do(nil, kv.Op{Kind: kv.OpPut, Key: "alpha", Val: 3}); err != nil || !r.Found {
		t.Fatalf("do put = (%+v, %v), want created", r, err)
	}
}

// TestLargeBatchPlanOrder drives a batch past the insertion-sort
// cutoff onto the sort.Stable fallback and checks the plan contract
// still holds there: same-key ops keep program order (the later Put
// wins and only the first reports created).
func TestLargeBatchPlanOrder(t *testing.T) {
	s := kv.New(nztm.New(), 8, 8)
	se := s.NewSession()
	const n, distinct = 600, 307
	ops := make([]kv.Op, n)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.OpPut, Key: fmt.Sprintf("k%03d", i%distinct), Val: uint64(i)}
	}
	res, err := se.Txn(nil, ops)
	if err != nil {
		t.Fatalf("large txn: %v", err)
	}
	for i := range ops {
		if want := i < distinct; res[i].Found != want {
			t.Fatalf("op %d created=%v, want %v (stable same-key order)", i, res[i].Found, want)
		}
	}
	for _, k := range []int{0, 151, 292, 293, 306} {
		want := uint64(k)
		if k+distinct < n {
			want = uint64(k + distinct) // the later same-key Put must win
		}
		v, ok, err := s.Get(nil, fmt.Sprintf("k%03d", k))
		if err != nil || !ok || v != want {
			t.Fatalf("k%03d = (%d, %v, %v), want (%d, true, nil)", k, v, ok, err, want)
		}
	}
}

// TestSessionSoak is the race-mode concurrent-session soak: many
// sessions share one store, each hammering CAS counters through its
// own handle cache while new keys keep appearing (so caches are
// perpetually behind the global intern table). Counters must conserve
// their increments and every session must resolve every key to the
// same handle — the coherence argument (handles are never reclaimed,
// so a private cache can lag but never lie) made executable.
func TestSessionSoak(t *testing.T) {
	const (
		goroutines = 8
		keys       = 24
		increments = 120
	)
	s := kv.New(dstm.New(), 8, 4)
	keyName := func(k int) string { return fmt.Sprintf("ctr%02d", k) }
	// Only the first third of the keys exist up front; the rest are
	// created mid-soak, each by the one session that owns it (k mod
	// goroutines — an unsynchronized racing Put 0 could wipe another
	// session's increments), so handle caches are perpetually behind
	// the growing global intern table.
	for k := 0; k < keys/3; k++ {
		if _, err := s.Put(nil, keyName(k), 0); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	succ := make([][]int64, goroutines)
	handles := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		succ[g] = make([]int64, keys)
		handles[g] = make([]uint64, keys)
		wg.Add(1)
		go func() {
			defer wg.Done()
			se := s.NewSession()
			rng := rand.New(rand.NewSource(int64(g) * 131))
			done := 0
			for done < increments {
				k := rng.Intn(keys)
				name := keyName(k)
				v, ok, err := se.Get(nil, name)
				if err != nil {
					panic(err)
				}
				if !ok {
					// Not created yet: only the owning session may create
					// it; everyone else moves on until it appears.
					if k%goroutines == g {
						if _, err := se.Put(nil, name, 0); err != nil {
							panic(err)
						}
					}
					continue
				}
				swapped, existed, err := se.CAS(nil, name, v, v+1)
				if err != nil {
					panic(err)
				}
				if !existed {
					panic("counter vanished")
				}
				if swapped {
					succ[g][k]++
					done++
				}
			}
			for k := 0; k < keys; k++ {
				handles[g][k] = se.Handle(keyName(k))
			}
		}()
	}
	wg.Wait()
	// Handle coherence: every session agrees with a fresh one.
	fresh := s.NewSession()
	for k := 0; k < keys; k++ {
		want := fresh.Handle(keyName(k))
		for g := 0; g < goroutines; g++ {
			if handles[g][k] != want {
				t.Fatalf("session %d resolved %s to handle %d, fresh session to %d", g, keyName(k), handles[g][k], want)
			}
		}
	}
	// Increment conservation through the wire of sessions.
	var total int64
	for k := 0; k < keys; k++ {
		var want int64
		for g := 0; g < goroutines; g++ {
			want += succ[g][k]
		}
		v, ok, err := s.Get(nil, keyName(k))
		if err != nil {
			t.Fatalf("final get %d: %v", k, err)
		}
		if !ok {
			// The owner never happened to pick this key; nobody can have
			// incremented it either.
			if want != 0 {
				t.Fatalf("counter %d missing but %d increments recorded", k, want)
			}
			continue
		}
		if int64(v) != want {
			t.Fatalf("counter %d = %d, want %d", k, v, want)
		}
		total += want
	}
	if total != goroutines*increments {
		t.Fatalf("total %d, want %d", total, goroutines*increments)
	}
}

// initTrackTM records the initial value of every t-variable the store
// allocates (arena nodes are created dynamically), so the
// serializability checker knows the legal first read of each variable.
type initTrackTM struct {
	core.TM
	mu   sync.Mutex
	init map[model.VarID]uint64
}

func (t *initTrackTM) NewVar(name string, init uint64) core.Var {
	v := t.TM.NewVar(name, init)
	t.mu.Lock()
	t.init[v.ID()] = init
	t.mu.Unlock()
	return v
}

// TestSimSerializable records a sim-mode history of multi-shard Txn
// batches under an adversarial random scheduler and feeds it to the
// exact serializability checker — the store's histories, not just its
// throughput, are subject to the paper's correctness machinery.
func TestSimSerializable(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		env := sim.New()
		track := &initTrackTM{TM: dstm.New(dstm.WithEnv(env)), init: map[model.VarID]uint64{}}
		tm := core.Recorded(track, env.Recorder())
		s := kv.New(tm, 4, 2)
		keys := []string{"a", "b", "c", "d", "e", "f"}
		for pi := 0; pi < 3; pi++ {
			pi := pi
			env.Spawn(func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(seed*31 + int64(pi)))
				for k := 0; k < 2; k++ {
					ops := []kv.Op{
						{Kind: kv.OpPut, Key: keys[rng.Intn(len(keys))], Val: uint64(rng.Intn(9) + 1)},
						{Kind: kv.OpGet, Key: keys[rng.Intn(len(keys))]},
						{Kind: kv.OpPut, Key: keys[rng.Intn(len(keys))], Val: uint64(rng.Intn(9) + 1)},
					}
					_, _ = s.Txn(p, ops, core.MaxAttempts(40))
				}
			})
		}
		h := env.Run(sim.Random(seed))
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: history not well-formed: %v", seed, err)
		}
		txs := model.Transactions(h)
		res := checker.CheckSerializable(txs, track.init)
		if !res.OK {
			t.Fatalf("seed %d: kv history not serializable: %s", seed, res.Reason)
		}
	}
}
