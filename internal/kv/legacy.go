package kv

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// TxnLegacy is the PR 3 implementation of Txn, preserved verbatim: a
// fresh five-slice plan, sort.SliceStable (interface header + closure
// per call), a fresh result slice and a per-call attempt closure, with
// every key resolved through the global sync.Map intern table. It
// exists only as the measured kv-layer baseline of experiment E10 —
// the wire server's legacy path calls it so the "PR 3 path" rows
// re-measure the whole retired request path, not just the parser.
// Semantics are identical to Txn, except that it bypasses the commit
// hook (and its commit-order locks) — never combine the legacy path
// with a durable (WAL-attached) store; the benchmarks don't.
func (s *Store) TxnLegacy(p *sim.Proc, ops []Op, opts ...core.RunOption) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	pl := s.planLegacy(ops)
	results := make([]OpResult, len(ops))
	attempts := 0
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		attempts++
		for _, i := range pl.order {
			op := ops[i]
			idx := s.shards[pl.shards[i]].idx
			h := pl.handles[i]
			res := &results[i]
			*res = OpResult{}
			var err error
			switch op.Kind {
			case OpGet:
				res.Val, res.Found, err = idx.Lookup(tx, h)
			case OpPut:
				res.Found, err = idx.Insert(tx, h, op.Val, &pl.spares[i])
			case OpDelete:
				res.Found, err = idx.Remove(tx, h)
			case OpCAS:
				res.Swapped, res.Found, err = idx.CompareAndSwap(tx, h, op.Old, op.Val)
				if err == nil && !res.Swapped {
					return ErrCASFailed
				}
			default:
				return fmt.Errorf("kv: unknown op kind %d", op.Kind)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}, opts...)

	distinct := 0
	for i := range pl.touched {
		pl.touched[i] = false
	}
	for _, si := range pl.shards {
		if !pl.touched[si] {
			pl.touched[si] = true
			distinct++
		}
	}
	committed := err == nil
	for si, t := range pl.touched {
		if !t {
			continue
		}
		s.shards[si].record(attempts, committed)
	}
	s.finish(committed, distinct)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// planLegacy is the PR 3 per-call plan builder behind TxnLegacy.
func (s *Store) planLegacy(ops []Op) *txnPlan {
	pl := &txnPlan{
		handles: make([]uint64, len(ops)),
		shards:  make([]int, len(ops)),
		order:   make([]int, len(ops)),
		spares:  make([]uint64, len(ops)),
		touched: make([]bool, len(s.shards)),
	}
	for i, op := range ops {
		pl.handles[i] = s.intern(op.Key)
		pl.shards[i] = s.shardOf(pl.handles[i])
		pl.order[i] = i
	}
	sort.SliceStable(pl.order, func(a, b int) bool {
		ia, ib := pl.order[a], pl.order[b]
		if pl.shards[ia] != pl.shards[ib] {
			return pl.shards[ia] < pl.shards[ib]
		}
		return pl.handles[ia] < pl.handles[ib]
	})
	return pl
}
