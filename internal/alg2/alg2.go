// Package alg2 is a faithful transcription of the paper's Algorithm 2:
// an obstruction-free STM implemented from fail-only consensus objects
// and read/write registers only — no CAS. It is the constructive half of
// Lemma 8 ("An OFTM can be implemented from fo-consensus and
// registers"), whose correctness proof (opacity, obstruction-freedom and
// wait-freedom) is Appendix B of the paper.
//
// Structure, mirroring the pseudocode's shared objects:
//
//	Owner[x, version]  — per t-variable, an unbounded array of
//	                     fo-consensus objects; version v's decision is
//	                     the transaction that owned x's v-th version.
//	State[Tk]          — one fo-consensus per transaction deciding its
//	                     fate: committed or aborted. Committing is
//	                     proposing "committed" to one's own State;
//	                     forcefully aborting Tk is proposing "aborted".
//	TVar[x, Tk]        — a register holding the value of x as written
//	                     (or re-published) by Tk; read by others only
//	                     after State[Tk] decided committed.
//	Aborted[Tk]        — a register set when Tk's ownership has been
//	                     revoked, so Tk completes as soon as possible.
//	V[x]               — a register holding the last owner of x; the
//	                     periodic re-check of V[x] inside acquire is
//	                     what makes the repeat loop wait-free.
//
// The paper notes (footnote 6) the algorithm's purpose is the
// equivalence proof: it uses unbounded memory (one fo-consensus per
// version, per transaction) and is deliberately impractical. This
// implementation keeps that character — the unbounded arrays are
// growable slices — but runs both raw and under the simulator, where
// the test suite checks opacity and obstruction-freedom on its actual
// histories (experiment E3).
//
// Because transactions acquire exclusive (revocable) ownership for reads
// as well as writes, reads here are visible, unlike DSTM's.
package alg2

import (
	"fmt"
	"sync"

	"repro/internal/base"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// Fate values proposed to State[Tk].
const (
	fateCommitted uint64 = 1
	fateAborted   uint64 = 2
)

// FoConsFactory builds the fo-consensus instances the engine needs. The
// default builds base.FoCons (a base object); the Theorem 6 composition
// substitutes Algorithm 3 instances implemented over an eventual
// ic-OFTM.
type FoConsFactory func(name string) base.Proposer

// Option configures the engine.
type Option func(*TM)

// WithEnv runs the engine's base objects under the simulator.
func WithEnv(env *sim.Env) Option {
	return func(t *TM) { t.env = env }
}

// WithFoConsPolicy sets the abort policy of the default base.FoCons
// objects (ignored if WithFoConsFactory is given).
func WithFoConsPolicy(policy base.AbortPolicy) Option {
	return func(t *TM) { t.policy = policy }
}

// WithFoConsFactory substitutes the fo-consensus implementation.
func WithFoConsFactory(f FoConsFactory) Option {
	return func(t *TM) { t.factory = f }
}

// TM is the Algorithm 2 engine. It implements core.TM.
type TM struct {
	env     *sim.Env
	policy  base.AbortPolicy
	factory FoConsFactory

	mu     sync.Mutex
	vars   []*tvar
	nextTx map[model.ProcID]int
	seed   int64

	// registry resolves transaction handles decided by Owner[x,v] to
	// descriptors (the paper's implicit indexing of State/TVar/Aborted
	// arrays by transaction identifier).
	reg sync.Map // uint64 handle -> *desc
}

// New returns an Algorithm 2 engine.
func New(opts ...Option) *TM {
	t := &TM{nextTx: map[model.ProcID]int{}}
	for _, o := range opts {
		o(t)
	}
	if t.factory == nil {
		t.factory = func(name string) base.Proposer {
			t.mu.Lock()
			t.seed++
			seed := t.seed
			t.mu.Unlock()
			return base.NewFoCons(t.env, name, t.policy, seed)
		}
	}
	return t
}

// Name implements core.TM.
func (t *TM) Name() string { return "alg2" }

// ObstructionFree implements core.TM: this is the point of the paper's
// Lemma 8, and the test suite checks it on recorded histories.
func (t *TM) ObstructionFree() bool { return true }

// tvar carries the per-variable shared objects.
type tvar struct {
	owner *TM
	id    model.VarID
	name  string
	init  uint64

	mu       sync.Mutex // protects growth of versions (memory management, not steps)
	versions []base.Proposer

	v *base.Reg // V[x]: last owner's handle (0 = none)
}

func (x *tvar) ID() model.VarID { return x.id }
func (x *tvar) Name() string    { return x.name }

// ownerAt returns Owner[x, version], growing the array on demand.
func (x *tvar) ownerAt(version int) base.Proposer {
	x.mu.Lock()
	defer x.mu.Unlock()
	for len(x.versions) <= version {
		x.versions = append(x.versions,
			x.owner.factory(fmt.Sprintf("Owner[%s,%d]", x.name, len(x.versions))))
	}
	return x.versions[version]
}

// NewVar implements core.TM.
func (t *TM) NewVar(name string, init uint64) core.Var {
	t.mu.Lock()
	defer t.mu.Unlock()
	x := &tvar{
		owner: t,
		id:    model.VarID(len(t.vars)),
		name:  name,
		init:  init,
		v:     base.NewReg(t.env, "V["+name+"]", 0),
	}
	t.vars = append(t.vars, x)
	return x
}

// desc is a transaction descriptor: State[Tk], Aborted[Tk], and the
// TVar[·, Tk] register row.
type desc struct {
	id      model.TxID
	state   base.Proposer
	aborted *base.Reg

	mu    sync.Mutex
	tvars map[model.VarID]*base.Reg
}

// tvarReg returns the TVar[x, Tk] register, creating it on first use.
// Both the owner (writing) and other transactions (reading after Tk
// committed) resolve the same register; the protocol guarantees the
// owner's write precedes any read.
func (d *desc) tvarReg(t *TM, x *tvar) *base.Reg {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.tvars[x.id]
	if !ok {
		r = base.NewReg(t.env, fmt.Sprintf("TVar[%s,%v]", x.name, d.id), 0)
		d.tvars[x.id] = r
	}
	return r
}

// Begin implements core.TM.
func (t *TM) Begin(p *sim.Proc) core.Tx {
	t.mu.Lock()
	pid := p.ID()
	t.nextTx[pid]++
	id := model.TxID{Proc: pid, Seq: t.nextTx[pid]}
	t.mu.Unlock()
	p.SetTx(id)
	d := &desc{
		id:      id,
		state:   t.factory("State[" + id.String() + "]"),
		aborted: base.NewReg(t.env, "Aborted["+id.String()+"]", 0),
		tvars:   map[model.VarID]*base.Reg{},
	}
	t.reg.Store(id.Handle(), d)
	return &tx{tm: t, p: p, d: d, wset: map[model.VarID]bool{}}
}

func (t *TM) lookup(handle uint64) *desc {
	d, ok := t.reg.Load(handle)
	if !ok {
		panic(fmt.Sprintf("alg2: unknown transaction handle %d", handle))
	}
	return d.(*desc)
}

type tx struct {
	tm   *TM
	p    *sim.Proc
	d    *desc
	wset map[model.VarID]bool
	// done caches local completion (an op returned A_k or tryC/tryA ran).
	done model.Status
}

func (x *tx) ID() model.TxID { return x.d.id }

// Status implements core.Tx. The authoritative status is State[Tk]'s
// decision; before any decision the transaction is live (or locally
// aborted if an operation already returned A_k).
func (x *tx) Status() model.Status {
	if f, ok := peek(x.d.state); ok {
		if f == fateCommitted {
			return model.Committed
		}
		return model.Aborted
	}
	return x.done
}

// peek inspects a Proposer's decision without stepping, when supported
// (base.FoCons). Algorithm 3-backed proposers report no peek; Status
// then reflects only local knowledge.
func peek(p base.Proposer) (uint64, bool) {
	if f, ok := p.(*base.FoCons); ok {
		return f.Decided(nil)
	}
	return 0, false
}

func (x *tx) abortLocal() error {
	x.done = model.Aborted
	x.p.SetTx(model.NoTx)
	return core.ErrAborted
}

// acquire is the paper's procedure acquire(Tk, x), lines 8–29.
func (x *tx) acquire(v *tvar) (uint64, error) {
	var state uint64
	if !x.wset[v.id] {
		version := 0
		state = v.init             // line 11
		vSnapshot := v.v.Read(x.p) // line 12: v ← V[x]
		for {
			ownerH := v.ownerAt(version).Propose(x.p, x.d.id.Handle()) // line 14
			if ownerH == base.Bottom {                                 // line 15
				return 0, x.abortLocal()
			}
			if ownerH != x.d.id.Handle() { // lines 16–20
				od := x.tm.lookup(ownerH)
				s := od.state.Propose(x.p, fateAborted) // line 17
				if s == base.Bottom {                   // line 18
					return 0, x.abortLocal()
				}
				if s == fateCommitted { // line 19
					state = od.tvarReg(x.tm, v).Read(x.p)
				} else { // line 20
					od.aborted.Write(x.p, 1)
				}
			}
			if v.v.Read(x.p) != vSnapshot { // line 21: wait-freedom guard
				return 0, x.abortLocal()
			}
			version++                      // line 22
			if ownerH == x.d.id.Handle() { // line 23: until owner = Tk
				break
			}
		}
		x.wset[v.id] = true                    // line 24
		x.d.tvarReg(x.tm, v).Write(x.p, state) // line 25
		v.v.Write(x.p, x.d.id.Handle())        // line 26
	} else {
		state = x.d.tvarReg(x.tm, v).Read(x.p) // line 27
	}
	if x.d.aborted.Read(x.p) != 0 { // line 28
		return 0, x.abortLocal()
	}
	return state, nil
}

func mustVar(t *TM, v core.Var) *tvar {
	tv, ok := v.(*tvar)
	if !ok || tv.owner != t {
		panic(fmt.Sprintf("alg2: variable %v belongs to a different TM", v))
	}
	return tv
}

// Read implements core.Tx (paper lines 1–2).
func (x *tx) Read(v core.Var) (uint64, error) {
	if x.done != model.Live {
		return 0, core.ErrAborted
	}
	return x.acquire(mustVar(x.tm, v))
}

// Write implements core.Tx (paper lines 3–7).
func (x *tx) Write(v core.Var, val uint64) error {
	if x.done != model.Live {
		return core.ErrAborted
	}
	tv := mustVar(x.tm, v)
	if _, err := x.acquire(tv); err != nil { // lines 4–5
		return err
	}
	x.d.tvarReg(x.tm, tv).Write(x.p, val) // line 6
	return nil
}

// Commit implements core.Tx (paper lines 30–33, tryC). A propose that
// aborts (Bottom) means "committed" was never registered, so no one can
// ever decide committed for this transaction: returning A_k is safe —
// this is precisely where fo-validity matters.
func (x *tx) Commit() error {
	if x.done != model.Live {
		return core.ErrAborted
	}
	s := x.d.state.Propose(x.p, fateCommitted) // line 31
	if s == fateCommitted {                    // line 32
		x.done = model.Committed
		x.p.SetTx(model.NoTx)
		return nil
	}
	return x.abortLocal() // line 33
}

// Abort implements core.Tx (paper lines 34–35, tryA: "return Ak"). Note
// the pseudocode does not decide State[Tk]: a later transaction that
// encounters Tk's ownership proposes aborted and finishes the job.
func (x *tx) Abort() {
	if x.done != model.Live {
		return
	}
	_ = x.abortLocal()
}
