package alg2_test

import (
	"errors"
	"testing"

	"repro/internal/alg2"
	"repro/internal/base"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tmtest"
)

func factory(policy base.AbortPolicy) tmtest.Factory {
	return func(env *sim.Env) core.TM {
		if env == nil {
			return alg2.New(alg2.WithFoConsPolicy(policy))
		}
		return alg2.New(alg2.WithEnv(env), alg2.WithFoConsPolicy(policy))
	}
}

func TestConformance(t *testing.T) {
	tmtest.Conformance(t, factory(base.NeverAbort))
}

func TestConformanceAdversarialFoCons(t *testing.T) {
	tmtest.Conformance(t, factory(base.AbortOnContention))
}

// TestSafetyCampaign validates experiment E3: Algorithm 2's recorded
// histories are opaque and obstruction-free under random schedules, for
// both the friendly and the adversarial fo-consensus base objects.
func TestSafetyCampaign(t *testing.T) {
	tmtest.SafetyCampaign(t, factory(base.NeverAbort), tmtest.CampaignConfig{Seeds: 20})
}

func TestSafetyCampaignAdversarial(t *testing.T) {
	tmtest.SafetyCampaign(t, factory(base.AbortOnContention), tmtest.CampaignConfig{Seeds: 20})
}

func TestSafetyCampaignRandomPolicy(t *testing.T) {
	tmtest.SafetyCampaign(t, factory(base.AbortRandomly), tmtest.CampaignConfig{Seeds: 15})
}

// TestSuspendedOwnerDoesNotBlock mirrors the DSTM obstruction-freedom
// test: Algorithm 2 must let p2 revoke a suspended owner's ownership by
// deciding "aborted" in the owner's State fo-consensus.
func TestSuspendedOwnerDoesNotBlock(t *testing.T) {
	env := sim.New()
	tm := alg2.New(alg2.WithEnv(env))
	x := tm.NewVar("x", 7)

	env.Spawn(func(p *sim.Proc) { // p1: acquires x, then suspends forever
		tx := tm.Begin(p)
		_ = tx.Write(x, 1)
		_ = tx.Commit()
	})
	var p2val uint64
	var p2err error
	env.Spawn(func(p *sim.Proc) {
		p2err = core.Run(tm, p, func(tx core.Tx) error {
			v, err := tx.Read(x)
			p2val = v
			return err
		}, core.MaxAttempts(10))
	})
	// p1's write: V read (1), propose Owner[x,0] (2 steps), V re-check
	// (1), TVar write (1), V write (1), TVar write (1) = 7 steps. Give it
	// 5: ownership decided, not yet published.
	env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: 5},
		sim.Phase{Proc: 2, Steps: -1},
	))
	if p2err != nil {
		t.Fatalf("p2 must complete despite the suspended owner: %v", p2err)
	}
	if p2val != 7 {
		t.Fatalf("p2 must read the initial value 7 (T1 never committed), got %d", p2val)
	}
}

// TestCommitBlockedByForcefulAbort: once another transaction decides
// "aborted" in my State, my tryC must return A_k.
func TestCommitBlockedByForcefulAbort(t *testing.T) {
	tm := alg2.New()
	x := tm.NewVar("x", 0)

	t1 := tm.Begin(nil)
	if err := t1.Write(x, 1); err != nil {
		t.Fatal(err)
	}
	// t2 steals ownership, forcefully aborting t1 via State[T1].
	t2 := tm.Begin(nil)
	if err := t2.Write(x, 2); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("t1's commit must fail after forceful abort, got %v", err)
	}
	if t1.Status() != model.Aborted {
		t.Fatalf("t1 status %v, want aborted", t1.Status())
	}
	if v, _ := core.ReadVar(tm, nil, x); v != 2 {
		t.Fatalf("x = %d, want 2", v)
	}
}

// TestVisibleReadConflict: reads acquire ownership too, so a
// reader-writer conflict forcefully aborts the reader.
func TestVisibleReadConflict(t *testing.T) {
	tm := alg2.New()
	x := tm.NewVar("x", 5)

	t1 := tm.Begin(nil)
	if v, err := t1.Read(x); err != nil || v != 5 {
		t.Fatalf("t1 read: %d %v", v, err)
	}
	t2 := tm.Begin(nil)
	if err := t2.Write(x, 9); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// t1 was aborted by t2's acquisition.
	if err := t1.Commit(); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("reader must have been forcefully aborted, got %v", err)
	}
}

// TestValueChainsThroughCommittedOwners: a new acquirer must find the
// latest committed value by walking the version history.
func TestValueChainsThroughCommittedOwners(t *testing.T) {
	tm := alg2.New()
	x := tm.NewVar("x", 1)
	for i := uint64(2); i <= 6; i++ {
		if err := core.WriteVar(tm, nil, x, i); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		v, err := core.ReadVar(tm, nil, x)
		if err != nil || v != i {
			t.Fatalf("read after write %d: %d %v", i, v, err)
		}
	}
}

// TestAbandonedTransactionIsAbortedByOthers: tryA does not decide
// State[Tk]; the next acquirer proposes aborted and proceeds with the
// old value.
func TestAbandonedTransactionIsAbortedByOthers(t *testing.T) {
	tm := alg2.New()
	x := tm.NewVar("x", 3)
	t1 := tm.Begin(nil)
	if err := t1.Write(x, 99); err != nil {
		t.Fatal(err)
	}
	t1.Abort() // local A_k only; State[T1] stays undecided

	v, err := core.ReadVar(tm, nil, x)
	if err != nil || v != 3 {
		t.Fatalf("abandoned write must be invisible: %d %v", v, err)
	}
	if t1.Status() != model.Aborted {
		t.Fatalf("t1 status %v", t1.Status())
	}
}

func TestForeignVarPanics(t *testing.T) {
	tm1 := alg2.New()
	tm2 := alg2.New()
	x := tm2.NewVar("x", 0)
	tx := tm1.Begin(nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("foreign var must panic")
		}
	}()
	_, _ = tx.Read(x)
}

func TestCrashCampaign(t *testing.T) {
	tmtest.CrashCampaign(t, factory(base.NeverAbort), 20)
}

func TestCrashCampaignAdversarial(t *testing.T) {
	tmtest.CrashCampaign(t, factory(base.AbortOnContention), 15)
}
