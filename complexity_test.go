// Step-complexity regression tests: with per-variable versioned
// validation, an R-read transaction must perform O(R) base-object
// steps — both quiescently and, crucially, while a disjoint writer
// commits continuously (O(1)-amortized validation per read). The PR 1
// global-epoch scheme and the paper's full-scan reference are kept as
// ablation controls that blow through the same linear budgets. The
// simulator's step counters make the bounds machine-checkable.
package oftm_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	oftm "repro"
)

// soloReadSteps runs one transaction reading R distinct variables on a
// solo process in sim mode and returns the recorded step count.
func soloReadSteps(t *testing.T, mk func(env *oftm.SimEnv) oftm.TM, reads int) int64 {
	t.Helper()
	env := oftm.NewSim()
	tm := mk(env)
	vars := make([]oftm.Var, reads)
	for i := range vars {
		vars[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
	}
	var runErr error
	env.Spawn(func(p *oftm.Proc) {
		runErr = oftm.AtomicallyOn(tm, p, func(tx oftm.Tx) error {
			for _, v := range vars {
				if _, err := tx.Read(v); err != nil {
					return err
				}
			}
			return nil
		}, oftm.MaxAttempts(1))
	})
	env.Run(oftm.Solo(1))
	if runErr != nil {
		t.Fatalf("solo %d-read transaction failed: %v", reads, runErr)
	}
	return env.TotalSteps()
}

func quiescentEngines() map[string]func(env *oftm.SimEnv) oftm.TM {
	return map[string]func(env *oftm.SimEnv) oftm.TM{
		"dstm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewDSTM(oftm.InSim(env)) },
		"nztm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewNZTM(oftm.InSim(env)) },
	}
}

// TestQuiescentReadStepsLinear: with epoch validation, steps grow
// linearly in R — both in absolute terms (a generous c·R+b bound that
// any quadratic scan blows through at R=256) and in growth rate
// (quadrupling R must not ~16× the steps).
func TestQuiescentReadStepsLinear(t *testing.T) {
	for name, mk := range quiescentEngines() {
		t.Run(name, func(t *testing.T) {
			s64 := soloReadSteps(t, mk, 64)
			s256 := soloReadSteps(t, mk, 256)
			if bound := int64(8*256 + 64); s256 > bound {
				t.Fatalf("256-read transaction took %d steps, want ≤ %d (O(R) epoch validation)", s256, bound)
			}
			if ratio := float64(s256) / float64(s64); ratio > 6 {
				t.Fatalf("growth 64→256 reads is %d→%d steps (%.1f×), want ~4× (linear)", s64, s256, ratio)
			}
		})
	}
}

// TestNoEpochValidationQuadratic: the ablation control — with the epoch
// skip disabled the same transaction pays the full per-read scan, so
// the step count must exceed any linear budget. This pins down that the
// linear bound above is measuring the epoch skip, not a test artifact.
func TestNoEpochValidationQuadratic(t *testing.T) {
	ablated := map[string]func(env *oftm.SimEnv) oftm.TM{
		"dstm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewDSTM(oftm.InSim(env), oftm.NoEpochValidation()) },
		"nztm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewNZTM(oftm.InSim(env), oftm.NoEpochValidation()) },
	}
	for name, mk := range ablated {
		t.Run(name, func(t *testing.T) {
			s256 := soloReadSteps(t, mk, 256)
			if bound := int64(8*256 + 64); s256 <= bound {
				t.Fatalf("ablated engine took only %d steps (≤ %d): the control no longer scans per read", s256, bound)
			}
		})
	}
}

// contendedReadSteps runs an R-read transaction on process 1 while
// process 2 commits small writes to a DISJOINT variable in a loop, the
// two interleaved step-by-step (round-robin). It returns the total step
// count of the run. The round-robin schedule means the writer's steps
// track the reader's one-for-one, so a linear total certifies O(1)
// amortized validation per read; a per-read rescan shows up as a
// quadratic total.
func contendedReadSteps(t *testing.T, mk func(env *oftm.SimEnv) oftm.TM, reads int) int64 {
	t.Helper()
	env := oftm.NewSim()
	tm := mk(env)
	vars := make([]oftm.Var, reads)
	for i := range vars {
		vars[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
	}
	hot := tm.NewVar("hot", 0) // the writer's variable, disjoint from every read
	var done atomic.Bool
	var readErr error
	env.Spawn(func(p *oftm.Proc) {
		defer done.Store(true)
		readErr = oftm.AtomicallyOn(tm, p, func(tx oftm.Tx) error {
			for _, v := range vars {
				if _, err := tx.Read(v); err != nil {
					return err
				}
			}
			return nil
		}, oftm.MaxAttempts(1))
	})
	env.Spawn(func(p *oftm.Proc) {
		for !done.Load() {
			if err := oftm.AtomicallyOn(tm, p, func(tx oftm.Tx) error {
				x, err := tx.Read(hot)
				if err != nil {
					return err
				}
				return tx.Write(hot, x+1)
			}, oftm.MaxAttempts(3)); err != nil {
				return
			}
		}
	})
	env.Run(oftm.RoundRobin())
	if readErr != nil {
		t.Fatalf("contended %d-read transaction failed: %v", reads, readErr)
	}
	return env.TotalSteps()
}

// contendedLinearBound is the step budget for the whole contended run
// (reader + round-robin-matched writer): generous per-read constant,
// but far below what even one full rescan per few reads costs at
// R=256.
func contendedLinearBound(reads int) int64 { return int64(24*reads + 256) }

// TestContendedReadStepsLinear is the tentpole's complexity claim: with
// per-variable versioned validation, reads stay O(1) amortized while an
// active writer commits continuously to a disjoint variable — the
// writer's commits advance the global clock on every transaction, but
// the reader only consults the versions of the variables it actually
// reads, so it never rescans.
func TestContendedReadStepsLinear(t *testing.T) {
	for name, mk := range quiescentEngines() {
		t.Run(name, func(t *testing.T) {
			s64 := contendedReadSteps(t, mk, 64)
			s256 := contendedReadSteps(t, mk, 256)
			if bound := contendedLinearBound(256); s256 > bound {
				t.Fatalf("contended 256-read run took %d steps, want ≤ %d (O(1) amortized validation under writes)", s256, bound)
			}
			if ratio := float64(s256) / float64(s64); ratio > 6 {
				t.Fatalf("contended growth 64→256 reads is %d→%d steps (%.1f×), want ~4× (linear)", s64, s256, ratio)
			}
		})
	}
}

// TestGlobalEpochContendedQuadratic is the ablation control
// (WithGlobalEpochOnly): under the PR 1 all-or-nothing commit counter
// the same disjoint writer invalidates the reader's cached validation
// on every commit, forcing full rescans and a super-linear step count —
// which pins down that TestContendedReadStepsLinear measures the
// per-variable versions, not a test artifact.
func TestGlobalEpochContendedQuadratic(t *testing.T) {
	ablated := map[string]func(env *oftm.SimEnv) oftm.TM{
		"dstm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewDSTM(oftm.InSim(env), oftm.WithGlobalEpochOnly()) },
		"nztm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewNZTM(oftm.InSim(env), oftm.WithGlobalEpochOnly()) },
	}
	for name, mk := range ablated {
		t.Run(name, func(t *testing.T) {
			s256 := contendedReadSteps(t, mk, 256)
			if bound := contendedLinearBound(256); s256 <= bound {
				t.Fatalf("global-epoch control took only %d steps (≤ %d): the disjoint writer no longer forces rescans", s256, bound)
			}
		})
	}
}
