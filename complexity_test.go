// Step-complexity regression tests: with commit-epoch validation, an
// R-read transaction running without concurrent commits must perform
// O(R) base-object steps, not the O(R²) of full per-read read-set
// validation. The simulator's step counters make the bound
// machine-checkable.
package oftm_test

import (
	"fmt"
	"testing"

	oftm "repro"
)

// soloReadSteps runs one transaction reading R distinct variables on a
// solo process in sim mode and returns the recorded step count.
func soloReadSteps(t *testing.T, mk func(env *oftm.SimEnv) oftm.TM, reads int) int64 {
	t.Helper()
	env := oftm.NewSim()
	tm := mk(env)
	vars := make([]oftm.Var, reads)
	for i := range vars {
		vars[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
	}
	var runErr error
	env.Spawn(func(p *oftm.Proc) {
		runErr = oftm.AtomicallyOn(tm, p, func(tx oftm.Tx) error {
			for _, v := range vars {
				if _, err := tx.Read(v); err != nil {
					return err
				}
			}
			return nil
		}, oftm.MaxAttempts(1))
	})
	env.Run(oftm.Solo(1))
	if runErr != nil {
		t.Fatalf("solo %d-read transaction failed: %v", reads, runErr)
	}
	return env.TotalSteps()
}

func quiescentEngines() map[string]func(env *oftm.SimEnv) oftm.TM {
	return map[string]func(env *oftm.SimEnv) oftm.TM{
		"dstm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewDSTM(oftm.InSim(env)) },
		"nztm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewNZTM(oftm.InSim(env)) },
	}
}

// TestQuiescentReadStepsLinear: with epoch validation, steps grow
// linearly in R — both in absolute terms (a generous c·R+b bound that
// any quadratic scan blows through at R=256) and in growth rate
// (quadrupling R must not ~16× the steps).
func TestQuiescentReadStepsLinear(t *testing.T) {
	for name, mk := range quiescentEngines() {
		t.Run(name, func(t *testing.T) {
			s64 := soloReadSteps(t, mk, 64)
			s256 := soloReadSteps(t, mk, 256)
			if bound := int64(8*256 + 64); s256 > bound {
				t.Fatalf("256-read transaction took %d steps, want ≤ %d (O(R) epoch validation)", s256, bound)
			}
			if ratio := float64(s256) / float64(s64); ratio > 6 {
				t.Fatalf("growth 64→256 reads is %d→%d steps (%.1f×), want ~4× (linear)", s64, s256, ratio)
			}
		})
	}
}

// TestNoEpochValidationQuadratic: the ablation control — with the epoch
// skip disabled the same transaction pays the full per-read scan, so
// the step count must exceed any linear budget. This pins down that the
// linear bound above is measuring the epoch skip, not a test artifact.
func TestNoEpochValidationQuadratic(t *testing.T) {
	ablated := map[string]func(env *oftm.SimEnv) oftm.TM{
		"dstm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewDSTM(oftm.InSim(env), oftm.NoEpochValidation()) },
		"nztm": func(env *oftm.SimEnv) oftm.TM { return oftm.NewNZTM(oftm.InSim(env), oftm.NoEpochValidation()) },
	}
	for name, mk := range ablated {
		t.Run(name, func(t *testing.T) {
			s256 := soloReadSteps(t, mk, 256)
			if bound := int64(8*256 + 64); s256 <= bound {
				t.Fatalf("ablated engine took only %d steps (≤ %d): the control no longer scans per read", s256, bound)
			}
		})
	}
}
