// Command oftm-check runs randomized checker campaigns: it drives an
// engine through many random schedules in the simulator and verifies,
// on every recorded low-level history,
//
//   - well-formedness of the history (§2.1),
//   - opacity (exact for small histories, commit-order witness above
//     the exact limit),
//   - obstruction-freedom (Definition 2) for engines that claim it.
//
// Usage:
//
//	oftm-check                      # all engines, 50 seeds each
//	oftm-check -engine dstm -seeds 500
//	oftm-check -procs 4 -txs 3 -ops 4 -vars 2   # hotter workloads
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bench"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	engine := flag.String("engine", "", "engine to check (default: all)")
	seeds := flag.Int("seeds", 50, "random schedules per engine")
	procs := flag.Int("procs", 3, "concurrent processes")
	txs := flag.Int("txs", 2, "transactions per process")
	ops := flag.Int("ops", 3, "operations per transaction")
	vars := flag.Int("vars", 3, "t-variables")
	crash := flag.Bool("crash", false, "crash a random process mid-run in every schedule")
	flag.Parse()

	var engines []bench.Engine
	if *engine != "" {
		engines = []bench.Engine{bench.EngineByName(*engine)}
	} else {
		engines = bench.Engines()
	}

	failures := 0
	for _, e := range engines {
		fmt.Printf("checking %-7s ", e.Name)
		bad := campaign(e, *seeds, *procs, *txs, *ops, *vars, *crash)
		if bad == 0 {
			fmt.Printf("OK   (%d schedules: well-formed, opaque/serializable%s)\n",
				*seeds, ofSuffix(e))
		} else {
			fmt.Printf("FAIL (%d violating schedules of %d)\n", bad, *seeds)
			failures += bad
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func ofSuffix(e bench.Engine) string {
	if e.OF {
		return ", obstruction-free"
	}
	return ""
}

func campaign(e bench.Engine, seeds, procs, txsPer, opsPer, nvars int, crash bool) int {
	bad := 0
	for seed := 0; seed < seeds; seed++ {
		env := sim.New()
		tm := core.Recorded(e.Sim(env), env.Recorder())
		vars := make([]core.Var, nvars)
		init := map[model.VarID]uint64{}
		for i := range vars {
			vars[i] = tm.NewVar(fmt.Sprintf("x%d", i), 0)
			init[vars[i].ID()] = 0
		}
		for pi := 0; pi < procs; pi++ {
			pi := pi
			env.Spawn(func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(int64(seed)*1009 + int64(pi)))
				for k := 0; k < txsPer; k++ {
					_ = core.Run(tm, p, func(tx core.Tx) error {
						for j := 0; j < opsPer; j++ {
							v := vars[rng.Intn(len(vars))]
							if rng.Intn(2) == 0 {
								if _, err := tx.Read(v); err != nil {
									return err
								}
							} else if err := tx.Write(v, uint64(rng.Intn(50)+1)); err != nil {
								return err
							}
						}
						return nil
					}, core.MaxAttempts(40))
				}
			})
		}
		var sched sim.Scheduler = sim.Random(int64(seed))
		if crash {
			victim := model.ProcID(seed%procs + 1)
			sched = sim.CrashAfter(victim, seed%13, sched)
		}
		h := env.Run(sched)
		if err := h.WellFormed(); err != nil {
			fmt.Printf("\n  seed %d: ill-formed history: %v\n", seed, err)
			bad++
			continue
		}
		txs := model.Transactions(h)
		if len(txs) <= checker.ExactLimit {
			if res := checker.CheckOpacity(txs, init); !res.OK {
				fmt.Printf("\n  seed %d: %s\n", seed, res.Reason)
				bad++
				continue
			}
		} else if res := checker.CheckSerializableWitness(txs, init); !res.OK {
			if res2 := checker.CheckSerializable(txs, init); !res2.OK {
				fmt.Printf("\n  seed %d: %s\n", seed, res2.Reason)
				bad++
				continue
			}
		}
		if e.OF {
			if v := checker.CheckObstructionFree(h); len(v) > 0 {
				fmt.Printf("\n  seed %d: obstruction-freedom: %v\n", seed, v)
				bad++
			}
			if v := checker.CheckICObstructionFree(h, env.CrashTimes()); len(v) > 0 {
				fmt.Printf("\n  seed %d: ic-obstruction-freedom: %v\n", seed, v)
				bad++
			}
		}
	}
	return bad
}
