// Command oftm-bench regenerates the experiment tables of the
// reproduction (DESIGN.md §4 / EXPERIMENTS.md).
//
// Usage:
//
//	oftm-bench                 # run every experiment E1..E8
//	oftm-bench -exp E5         # run one experiment
//	oftm-bench -list           # list experiments
//	oftm-bench -json out.json  # write the perf-tracking grid as JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "measure the perf-tracking grid and write JSON to this file ('-' for stdout)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "oftm-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "oftm-bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
		return
	}
	for _, e := range bench.All() {
		run(e)
		fmt.Println()
	}
}

// writeJSONFile measures the perf grid into path ("-" = stdout). A
// failed close is reported: a truncated perf-tracking file must not
// exit 0.
func writeJSONFile(path string) error {
	if path == "-" {
		return bench.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := bench.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func run(e bench.Experiment) {
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	start := time.Now()
	e.Run(os.Stdout)
	fmt.Printf("(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
}
