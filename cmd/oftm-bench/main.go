// Command oftm-bench regenerates the experiment tables of the
// reproduction (DESIGN.md §4 / EXPERIMENTS.md).
//
// Usage:
//
//	oftm-bench                 # run every experiment E1..E11
//	oftm-bench -exp E5         # run one experiment
//	oftm-bench -list           # list experiments
//	oftm-bench -kvsmoke        # brief run of every kv-* workload (CI)
//	oftm-bench -servebench     # end-to-end loopback server load
//	                           # (E10 wire path + E11 durability +
//	                           # E13 runtime scaling grid +
//	                           # E14 replication follower reads +
//	                           # E15 async reply path + soak);
//	                           # with -json, write the serving records
//	oftm-bench -servebench -procs 4
//	                           # ...driving the E13 grid from 4 loadgen
//	                           # processes so the client never
//	                           # bottlenecks the measurement (default 2;
//	                           # -procs 1 falls back to in-process load)
//	oftm-bench -json out.json  # write the perf-tracking grid as JSON
//	oftm-bench -json out.json -baseline BENCH_PR1.json
//	                           # ...and diff ns/op + allocs/op against
//	                           # a previous grid, exiting 1 on
//	                           # regressions beyond tolerance
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	// A re-exec'd loadgen child (E13 -procs) never comes back from this.
	bench.MaybeLoadgenChild()
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "measure the perf-tracking grid and write JSON to this file ('-' for stdout)")
	baseline := flag.String("baseline", "", "previous perf-tracking JSON to diff against (requires -json); exits 1 when any record's ns/op regresses by more than -tolerance")
	tolerance := flag.Float64("tolerance", 25, "regression tolerance for -baseline, in percent")
	kvsmoke := flag.Bool("kvsmoke", false, "run every kv-* workload briefly and exit (CI smoke)")
	servebench := flag.Bool("servebench", false, "run the end-to-end loopback server load (experiments E10, E11 and E13); with -json, write the serving records to that file")
	procs := flag.Int("procs", 2, "E13: number of loadgen processes driving the scaling grid (1 = in-process; >1 keeps the measured process serving-only, so its req/s-per-core is clean)")
	scaleConns := flag.String("scale-conns", "", "E13: comma-separated connection grid override (e.g. 8,64 for the CI smoke)")
	scaleWorkers := flag.Int("scale-workers", 0, "E13: worker count for worker-runtime grid points (0 = server default)")
	flag.Parse()

	opts := bench.ScaleOptions{Procs: *procs, Workers: *scaleWorkers}
	if *scaleConns != "" {
		for _, f := range strings.Split(*scaleConns, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "oftm-bench: bad -scale-conns entry %q\n", f)
				os.Exit(2)
			}
			opts.Conns = append(opts.Conns, n)
		}
	}
	bench.SetScaleOptions(opts)

	if *servebench {
		bench.E10(os.Stdout)
		fmt.Println()
		bench.E11(os.Stdout)
		fmt.Println()
		bench.E13(os.Stdout)
		fmt.Println()
		bench.E14(os.Stdout)
		fmt.Println()
		bench.E15(os.Stdout)
		if *jsonOut != "" {
			if err := writeFile(*jsonOut, bench.WriteServerJSON); err != nil {
				fmt.Fprintf(os.Stderr, "oftm-bench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *kvsmoke {
		if err := bench.KVSmoke(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "oftm-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *baseline != "" && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "oftm-bench: -baseline requires -json (the comparison needs fresh measurements)")
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "oftm-bench: %v\n", err)
			os.Exit(1)
		}
		if *baseline != "" {
			if err := diffBaseline(*jsonOut, *baseline, *tolerance); err != nil {
				fmt.Fprintf(os.Stderr, "oftm-bench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "oftm-bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
		return
	}
	for _, e := range bench.All() {
		run(e)
		fmt.Println()
	}
}

// writeJSONFile measures the perf grid into path ("-" = stdout).
func writeJSONFile(path string) error {
	return writeFile(path, bench.WriteJSON)
}

// writeFile streams write's output into path ("-" = stdout). A failed
// close is reported: a truncated perf-tracking file must not exit 0.
func writeFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// diffBaseline compares the freshly written grid against a previous
// one, printing per-record ns/op deltas. A regression beyond tolPct on
// any record is an error: the perf trajectory is enforced, not just
// recorded. ('-' as the json output streams to stdout and leaves
// nothing to compare.)
func diffBaseline(curPath, basePath string, tolPct float64) error {
	if curPath == "-" {
		return fmt.Errorf("-baseline needs -json to write to a file, not '-'")
	}
	cur, err := bench.LoadReport(curPath)
	if err != nil {
		return err
	}
	base, err := bench.LoadReport(basePath)
	if err != nil {
		return err
	}
	fmt.Printf("perf diff: %s (current) vs %s (baseline), tolerance %.0f%%:\n", curPath, basePath, tolPct)
	if n := bench.Compare(os.Stdout, base, cur, tolPct); n > 0 {
		return fmt.Errorf("%d record(s) regressed beyond %.0f%% vs %s", n, tolPct, basePath)
	}
	return nil
}

func run(e bench.Experiment) {
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	start := time.Now()
	e.Run(os.Stdout)
	fmt.Printf("(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
}
