// Command oftm-server serves the sharded transactional key-value
// store (internal/kv) over TCP with the line protocol of
// internal/server, on any of the repository's STM engines.
//
// Server mode:
//
//	oftm-server -addr 127.0.0.1:7070 -engine nztm -shards 8
//
// runs until SIGINT/SIGTERM, then shuts down cleanly and prints the
// serving report (requests, committed transactions, aborts,
// cross-shard ratio, engine stats).
//
// Client (load) mode:
//
//	oftm-server -connect 127.0.0.1:7070 -conns 4 -ops 1000
//
// drives a closed-loop pipelined workload against a running server and
// exits non-zero unless every response was clean and the server
// reports non-zero committed transactions — the smoke criterion used
// by CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server mode: TCP listen address")
	engine := flag.String("engine", "nztm", "STM engine: dstm|nztm|2pl|tl2|coarse")
	shards := flag.Int("shards", 8, "key-space shards")
	buckets := flag.Int("buckets", 16, "hash buckets per shard")
	batch := flag.Int("batch", 64, "max pipelined requests folded into one transaction")
	maxLine := flag.Int("max-line", 1<<20, "max request line length in bytes (longer lines answer ERR line too long and close)")
	runtimeKind := flag.String("runtime", "worker", "serving runtime: worker (shard-affine loops) | goroutine (one per connection)")
	workers := flag.Int("workers", 0, "worker runtime: number of worker loops (0 = GOMAXPROCS, capped at -shards)")
	unit := flag.Int("unit", 0, "worker runtime: max ops folded into one merged shard unit (0 = default 8, the engines' inline read/write-set size)")
	flushTimeout := flag.Duration("flush-timeout", 0, "worker runtime: per-connection flusher progress bound; a connection whose socket accepts no reply bytes for this long is closed (0 = default 5s, negative disables the kill)")
	maxPendingWrite := flag.Int64("max-pending-write", 0, "worker runtime: max sealed-but-unwritten reply bytes per connection before its reader pauses (0 = default 1MiB, negative disables)")
	flushers := flag.Int("flushers", 0, "worker runtime: reply-flusher goroutines (0 = default 2)")
	walDir := flag.String("wal-dir", "", "durability: write-ahead log directory (empty = volatile)")
	fsync := flag.String("fsync", "interval", "durability: WAL fsync policy: always|interval|never")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "durability: fsync period for -fsync interval")
	snapEvery := flag.Duration("snapshot-every", 0, "durability: periodic snapshot+truncate period (0 = off)")
	snapFull := flag.Bool("snapshot-full", false, "durability: force full-store snapshot images instead of incremental per-shard chains")
	replicateAddr := flag.String("replicate-addr", "", "replication: serve the WAL record stream to replicas on this address (requires -wal-dir)")
	replicaOf := flag.String("replica-of", "", "replication: boot as a read-only replica of the primary's -replicate-addr (requires -wal-dir; SIGUSR1 or PROMOTE promotes)")
	connect := flag.String("connect", "", "client mode: address of a running server to load")
	conns := flag.Int("conns", 4, "client mode: concurrent connections")
	ops := flag.Int("ops", 1000, "client mode: requests per connection")
	pipeline := flag.Int("pipeline", 32, "client mode: pipelined requests per window")
	flag.Parse()

	if *connect != "" {
		runClient(*connect, *conns, *ops, *pipeline)
		return
	}
	runServer(server.Config{
		Addr:            *addr,
		Engine:          *engine,
		Shards:          *shards,
		Buckets:         *buckets,
		Batch:           *batch,
		MaxLine:         *maxLine,
		Runtime:         *runtimeKind,
		Workers:         *workers,
		Unit:            *unit,
		FlushTimeout:    *flushTimeout,
		MaxPendingWrite: *maxPendingWrite,
		Flushers:        *flushers,
		WALDir:          *walDir,
		Fsync:           *fsync,
		FsyncInterval:   *fsyncEvery,
		SnapshotEvery:   *snapEvery,
		SnapshotFull:    *snapFull,
		ReplicateAddr:   *replicateAddr,
		ReplicaOf:       *replicaOf,
	})
}

func runServer(cfg server.Config) {
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oftm-server: %v\n", err)
		os.Exit(2)
	}
	if err := s.Listen(); err != nil {
		fmt.Fprintf(os.Stderr, "oftm-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("oftm-server: serving on %s (engine=%s shards=%d buckets=%d batch=%d runtime=%s workers=%d)\n",
		s.Addr(), cfg.Engine, cfg.Shards, cfg.Buckets, cfg.Batch, cfg.Runtime, len(s.WorkerStats()))
	if cfg.ReplicateAddr != "" {
		fmt.Printf("oftm-server: role=%s replicating on %s\n", s.Role(), s.ReplAddr())
	}
	if cfg.ReplicaOf != "" {
		fmt.Printf("oftm-server: role=%s of %s (writes answer ERR readonly; SIGUSR1 or PROMOTE promotes)\n",
			s.Role(), cfg.ReplicaOf)
	}
	if cfg.WALDir != "" {
		rec := s.Recovered()
		fmt.Printf("oftm-server: wal %s (fsync=%s): recovered %d key(s), snapshot cut %d, %d record(s) replayed, last seq %d",
			cfg.WALDir, cfg.Fsync, rec.Keys, rec.SnapshotSeq, rec.Records, rec.LastSeq)
		if rec.TornTail {
			fmt.Printf(" [torn tail truncated]")
		}
		fmt.Println()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("oftm-server: shutting down...")
		s.Close()
	}()
	promote := make(chan os.Signal, 1)
	signal.Notify(promote, syscall.SIGUSR1)
	go func() {
		for range promote {
			seq, err := s.Promote()
			if err != nil {
				fmt.Fprintf(os.Stderr, "oftm-server: promote: %v\n", err)
				continue
			}
			fmt.Printf("oftm-server: promoted to primary at seq %d\n", seq)
		}
	}()

	if err := s.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "oftm-server: serve: %v\n", err)
		os.Exit(1)
	}

	st := s.Store().Stats()
	fmt.Printf("oftm-server: clean shutdown\n")
	fmt.Printf("  requests served:        %d\n", s.Requests())
	fmt.Printf("  committed transactions: %d\n", st.Txns)
	fmt.Printf("  aborted attempts:       %d\n", st.Aborts())
	fmt.Printf("  cross-shard ratio:      %.4f\n", st.CrossShardRatio())
	for i, sh := range st.Shards {
		fmt.Printf("  shard %2d: ops=%d aborts=%d\n", i, sh.Ops, sh.Aborts)
	}
	for i, w := range s.WorkerStats() {
		fmt.Printf("  worker %2d: conns=%d reqs=%d rounds=%d escalations=%d dispatches=%d\n",
			i, w.Conns, w.Requests, w.FlushRounds, w.Escalations, w.Dispatches)
	}
	if fs := s.FlushStats(); len(fs.Workers) > 0 {
		fmt.Printf("  flush: sealed=%d pauses=%d kills=%d\n", fs.SealedBytes, fs.Pauses, fs.Kills)
	}
	if es, ok := core.StatsOf(s.TM()); ok {
		fmt.Printf("  engine: epoch=%d forced_aborts=%d snapshot_extensions=%d\n",
			es.Epoch, es.ForcedAborts, es.SnapshotExtensions)
	}
	if l := s.WAL(); l != nil {
		ws := l.Stats()
		fmt.Printf("  wal: appended=%d durable=%d snapshot_cut=%d segments=%d\n",
			ws.Appended, ws.Durable, ws.SnapshotSeq, ws.Segments)
	}
	if cfg.ReplicateAddr != "" || cfg.ReplicaOf != "" {
		rs := s.ReplStats()
		fmt.Printf("  repl: role=%s peers=%d last_shipped=%d last_applied=%d lag=%d\n",
			rs.Role, rs.Peers, rs.LastShipped, rs.LastApplied, rs.Lag)
	}
}

func runClient(addr string, conns, ops, pipeline int) {
	fmt.Printf("oftm-server: loading %s (%d conns x %d ops, pipeline %d)\n", addr, conns, ops, pipeline)
	stats, err := server.RunLoad(addr, conns, ops, pipeline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oftm-server: load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  acked requests: %d in %v (%.0f ops/s)\n", stats.Ops, stats.Elapsed.Round(1e6), stats.OpsPerSec())
	fmt.Printf("  server committed transactions: %d\n", stats.ServerTxns)
	if stats.Ops == 0 || stats.ServerTxns == 0 {
		fmt.Fprintln(os.Stderr, "oftm-server: smoke FAILED: zero acked requests or zero committed transactions")
		os.Exit(1)
	}
	fmt.Println("  smoke OK")
}
