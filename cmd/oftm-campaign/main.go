// Command oftm-campaign runs the multi-seed crash campaign from the
// command line — the same invariants the test wrappers in
// internal/campaign enforce, packaged for the Makefile sim targets:
//
//	oftm-campaign -mode crash -seeds 100          # make sim-multi-seed
//	oftm-campaign -mode nondet -seeds 4           # make sim-nondeterminism
//	oftm-campaign -mode import-export -seeds 8    # make sim-import-export
//	oftm-campaign -mode torture -seeds 8          # make snapshot-smoke
//
// Every seed drives a deterministic workload into a WAL-backed store
// while a seeded fault schedule (internal/faultfs) delivers a crash or
// disk error, then recovers and checks fail-stop, acked-writes-survive,
// serializability and same-seed determinism. On any violation the
// command prints the seed and the exact `go test` command that replays
// it, and exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/campaign"
)

func main() {
	mode := flag.String("mode", "crash", "campaign mode: crash|nondet|import-export|torture")
	seeds := flag.Int("seeds", 10, "number of seeds to sweep")
	ops := flag.Int("ops", 0, "driver operations per crash run (0 = default 300)")
	crashProb := flag.Float64("crashprob", -1, "probability the injected fault is a crash (<0 keeps default 0.5)")
	flag.Parse()

	cfg := campaign.Config{}
	if *ops > 0 {
		cfg.Ops = *ops
	}
	if *crashProb >= 0 {
		cfg.CrashProb = *crashProb
		if cfg.CrashProb == 0 {
			cfg.CrashProb = -1 // Config treats 0 as "default"; <0 disables crashes
		}
	}

	fail := func(seed int64, err error) {
		fmt.Fprintf(os.Stderr, "oftm-campaign: VIOLATION: %v\n", err)
		fmt.Fprintf(os.Stderr, "oftm-campaign: repro: %s\n", campaign.ReproCommand(seed, cfg))
		os.Exit(1)
	}

	engines := campaign.Engines()
	switch *mode {
	case "crash":
		fmt.Printf("oftm-campaign: crash campaign, %d seeds (fail-stop, acked-writes-survive, serializability)\n", *seeds)
		kinds := map[string]int{}
		for seed := int64(0); seed < int64(*seeds); seed++ {
			engine := engines[seed%int64(len(engines))]
			rep, err := campaign.CrashRun(seed, engine, cfg)
			if err != nil {
				fail(seed, err)
			}
			kinds[strings.SplitN(rep.Plan, "+", 2)[0]]++
			if err := campaign.SimSerializable(seed, engine, cfg); err != nil {
				fail(seed, err)
			}
		}
		fmt.Printf("oftm-campaign: %d seeds passed; fault coverage:\n", *seeds)
		names := make([]string, 0, len(kinds))
		for k := range kinds {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Printf("  %-28s %d\n", k, kinds[k])
		}
	case "nondet":
		fmt.Printf("oftm-campaign: same-seed determinism battery, %d seeds (crash-run x2, cross-engine, sim x2, serializability)\n", *seeds)
		for seed := int64(0); seed < int64(*seeds); seed++ {
			if err := campaign.Nondeterminism(seed, cfg); err != nil {
				fail(seed, err)
			}
		}
		fmt.Printf("oftm-campaign: %d seeds byte-identical across runs and engines\n", *seeds)
	case "import-export":
		fmt.Printf("oftm-campaign: snapshot import/export round-trip, %d seeds\n", *seeds)
		for seed := int64(0); seed < int64(*seeds); seed++ {
			if err := campaign.ImportExport(seed, engines[seed%int64(len(engines))], cfg); err != nil {
				fail(seed, err)
			}
		}
		fmt.Printf("oftm-campaign: %d seeds round-tripped to identical snapshot bytes\n", *seeds)
	case "torture":
		probe := cfg
		runs := 0
		fmt.Printf("oftm-campaign: snapshot torture, %d seeds x every crash position in the incremental snapshot writer\n", *seeds)
		for seed := int64(0); seed < int64(*seeds); seed++ {
			shards := 4
			if probe.Shards > 0 {
				shards = probe.Shards
			}
			for after := 0; after <= shards+1; after++ {
				engine := engines[(seed+int64(after))%int64(len(engines))]
				rep, err := campaign.SnapshotTorture(seed, engine, after, cfg)
				if err != nil {
					fail(seed, err)
				}
				if !strings.Contains(rep.FiredOn, "writefile") {
					fail(seed, fmt.Errorf("seed %d after=%d: crash fired on %q, want a snapshot writefile op", seed, after, rep.FiredOn))
				}
				runs++
			}
		}
		fmt.Printf("oftm-campaign: %d torture runs recovered a complete chain and every acked batch\n", runs)
	default:
		fmt.Fprintf(os.Stderr, "oftm-campaign: unknown -mode %q (crash|nondet|import-export|torture)\n", *mode)
		os.Exit(2)
	}
}
