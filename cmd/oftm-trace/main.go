// Command oftm-trace regenerates the paper's figures as ASCII timelines
// from live runs of the engines under the deterministic scheduler.
//
// Usage:
//
//	oftm-trace -fig 1                  # Figure 1: two-level execution
//	oftm-trace -fig 2                  # Figure 2: DAP impossibility sweep
//	oftm-trace -fig 2 -engine 2pl      # same scenario on a baseline
//	oftm-trace -fig 2 -t 5             # full timeline at suspension point 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	fig := flag.Int("fig", 1, "figure to regenerate (1 or 2)")
	engine := flag.String("engine", "dstm", "engine: dstm, alg2, 2pl, tl2, coarse")
	point := flag.Int("t", -1, "for -fig 2: render the full timeline at this suspension point")
	flag.Parse()

	e := bench.EngineByName(*engine)
	switch *fig {
	case 1:
		h, names := adversary.RunFig1(e.Sim)
		fmt.Printf("Figure 1 — two-level execution model (engine %s)\n", e.Name)
		fmt.Println("p1 runs one transaction (a 'move' between x and y); p2 then reads x.")
		fmt.Println("inv/ret lines are high-level TM operations; '.' lines are base-object steps.")
		fmt.Println()
		fmt.Print(trace.Render(h, names))
	case 2:
		if *point >= 0 {
			renderFig2Point(e, *point)
			return
		}
		rep := adversary.RunFig2(e.Sim, 6)
		fmt.Print(rep.Format())
	default:
		fmt.Fprintf(os.Stderr, "oftm-trace: unknown figure %d\n", *fig)
		os.Exit(2)
	}
}

// renderFig2Point replays the Figure 2 scenario with T1 suspended after
// the given number of steps and prints the complete two-level timeline.
func renderFig2Point(e bench.Engine, t int) {
	env := sim.New()
	tm := core.Recorded(e.Sim(env), env.Recorder())
	w := tm.NewVar("w", 0)
	x := tm.NewVar("x", 0)
	y := tm.NewVar("y", 0)
	z := tm.NewVar("z", 0)
	env.Spawn(func(p *sim.Proc) {
		tx := tm.Begin(p)
		if _, err := tx.Read(w); err != nil {
			return
		}
		if _, err := tx.Read(z); err != nil {
			return
		}
		if err := tx.Write(x, 1); err != nil {
			return
		}
		if err := tx.Write(y, 1); err != nil {
			return
		}
		_ = tx.Commit()
	})
	env.Spawn(func(p *sim.Proc) {
		_ = core.Run(tm, p, func(tx core.Tx) error {
			if _, err := tx.Read(x); err != nil {
				return err
			}
			return tx.Write(w, 1)
		}, core.MaxAttempts(6))
	})
	env.Spawn(func(p *sim.Proc) {
		_ = core.Run(tm, p, func(tx core.Tx) error {
			if _, err := tx.Read(y); err != nil {
				return err
			}
			return tx.Write(z, 1)
		}, core.MaxAttempts(6))
	})
	h := env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: t},
		sim.Phase{Proc: 2, Steps: -1},
		sim.Phase{Proc: 3, Steps: -1},
	))
	fmt.Printf("Figure 2 timeline — engine %s, T1 suspended after %d steps\n\n", e.Name, t)
	fmt.Print(trace.Render(h, env.ObjName))
	_ = model.NoTx
}
