package oftm_test

import (
	"errors"
	"sync"
	"testing"

	oftm "repro"
)

func allEngines() map[string]func() oftm.TM {
	return map[string]func() oftm.TM{
		"dstm":   func() oftm.TM { return oftm.NewDSTM() },
		"alg2":   func() oftm.TM { return oftm.NewAlg2() },
		"2pl":    func() oftm.TM { return oftm.NewTwoPhaseLocking() },
		"tl2":    func() oftm.TM { return oftm.NewTL2() },
		"coarse": func() oftm.TM { return oftm.NewCoarseLock() },
	}
}

func TestFacadeQuickstart(t *testing.T) {
	for name, mk := range allEngines() {
		t.Run(name, func(t *testing.T) {
			tm := mk()
			x := tm.NewVar("x", 0)
			if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
				v, err := tx.Read(x)
				if err != nil {
					return err
				}
				return tx.Write(x, v+1)
			}); err != nil {
				t.Fatal(err)
			}
			var got uint64
			if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
				v, err := tx.Read(x)
				got = v
				return err
			}); err != nil || got != 1 {
				t.Fatalf("x = %d (%v)", got, err)
			}
		})
	}
}

func TestFacadeManagers(t *testing.T) {
	for _, m := range []oftm.ContentionManager{oftm.Aggressive, oftm.Polite, oftm.Karma, oftm.Timestamp} {
		tm := oftm.NewDSTM(oftm.WithManager(m))
		c := oftm.NewCounter(tm, 0)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := c.Inc(nil); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		v, err := c.Value(nil)
		if err != nil || v != 200 {
			t.Fatalf("manager %s: counter = %d (%v)", m.Name(), v, err)
		}
	}
}

func TestFacadeSimMode(t *testing.T) {
	env := oftm.NewSim()
	tm := oftm.NewDSTM(oftm.InSim(env))
	x := tm.NewVar("x", 0)
	var errs [2]error
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn(func(p *oftm.Proc) {
			errs[i] = oftm.AtomicallyOn(tm, p, func(tx oftm.Tx) error {
				v, err := tx.Read(x)
				if err != nil {
					return err
				}
				return tx.Write(x, v+1)
			}, oftm.MaxAttempts(20))
		})
	}

	env.Run(oftm.RoundRobin())
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("errors: %v %v", errs[0], errs[1])
	}
	var got uint64
	if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
		v, err := tx.Read(x)
		got = v
		return err
	}); err != nil || got != 2 {
		t.Fatalf("x = %d (%v), want 2", got, err)
	}
}

func TestFacadeStructures(t *testing.T) {
	tm := oftm.NewTL2()
	b := oftm.NewBank(tm, 4, 25)
	if err := b.Transfer(nil, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	total, err := b.Total(nil)
	if err != nil || total != 100 {
		t.Fatalf("total %d (%v)", total, err)
	}
	s := oftm.NewIntSet(tm)
	if added, err := s.Insert(nil, 3); err != nil || !added {
		t.Fatalf("insert: %v %v", added, err)
	}
	h := oftm.NewHash(tm, 4)
	if added, err := h.Put(nil, 1, 2); err != nil || !added {
		t.Fatalf("put: %v %v", added, err)
	}
	q := oftm.NewQueue(tm, 2)
	if ok, err := q.Enqueue(nil, 9); err != nil || !ok {
		t.Fatalf("enqueue: %v %v", ok, err)
	}
	v, ok, err := q.Dequeue(nil)
	if err != nil || !ok || v != 9 {
		t.Fatalf("dequeue: %d %v %v", v, ok, err)
	}
}

func TestFacadeErrAborted(t *testing.T) {
	tm := oftm.NewDSTM()
	x := tm.NewVar("x", 0)
	tx := tm.Begin(nil)
	tx.Abort()
	if _, err := tx.Read(x); !errors.Is(err, oftm.ErrAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeAblationVariants(t *testing.T) {
	tm := oftm.NewDSTM(oftm.ValidateAtCommitOnly())
	x := tm.NewVar("x", 0)
	if err := oftm.Atomically(tm, func(tx oftm.Tx) error { return tx.Write(x, 1) }); err != nil {
		t.Fatal(err)
	}
	tm2 := oftm.NewAlg2(oftm.AdversarialFoCons())
	y := tm2.NewVar("y", 0)
	if err := oftm.Atomically(tm2, func(tx oftm.Tx) error { return tx.Write(y, 1) }); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeKV(t *testing.T) {
	store := oftm.NewKV(oftm.NewNZTM(), 4, 8)
	if created, err := store.Put(nil, "user:1", 42); err != nil || !created {
		t.Fatalf("put = (%v, %v)", created, err)
	}
	if v, ok, err := store.Get(nil, "user:1"); err != nil || !ok || v != 42 {
		t.Fatalf("get = (%d, %v, %v)", v, ok, err)
	}
	res, err := store.Txn(nil, []oftm.KVOp{
		{Kind: oftm.KVCAS, Key: "user:1", Old: 42, Val: 43},
		{Kind: oftm.KVPut, Key: "user:2", Val: 1},
		{Kind: oftm.KVGet, Key: "user:1"},
	})
	if err != nil {
		t.Fatalf("txn: %v", err)
	}
	if !res[0].Swapped || res[2].Val != 43 {
		t.Fatalf("txn results %+v", res)
	}
	if _, err := store.Txn(nil, []oftm.KVOp{{Kind: oftm.KVCAS, Key: "user:1", Old: 42, Val: 9}}); !errors.Is(err, oftm.ErrKVCASFailed) {
		t.Fatalf("guard err = %v, want ErrKVCASFailed", err)
	}
	st := store.Stats()
	if st.Txns == 0 || len(st.Shards) != 4 {
		t.Fatalf("stats %+v", st)
	}
}
