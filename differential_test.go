package oftm_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	oftm "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/model"
	"repro/internal/sim"
)

// TestDifferentialEngines drives the same randomly generated operation
// sequence through every engine, single-threaded, and requires
// identical observable behaviour: every read returns the same value and
// the final state matches. Sequentially all six engines must be
// indistinguishable; any divergence is a bug in one of them.
func TestDifferentialEngines(t *testing.T) {
	f := func(seed int64, nops uint8) bool {
		type step struct {
			read bool
			v    int
			val  uint64
		}
		rng := rand.New(rand.NewSource(seed))
		const nvars = 4
		var script []step
		for i := 0; i < int(nops%64)+4; i++ {
			script = append(script, step{
				read: rng.Intn(2) == 0,
				v:    rng.Intn(nvars),
				val:  uint64(rng.Intn(100)),
			})
		}
		// Split the script into transactions of 1-4 ops; every 5th
		// transaction aborts instead of committing.
		var results [][]uint64
		var finals []uint64
		for _, e := range bench.Engines() {
			tm := e.Raw()
			vars := make([]oftm.Var, nvars)
			for i := range vars {
				vars[i] = tm.NewVar(fmt.Sprintf("v%d", i), 7)
			}
			var reads []uint64
			i := 0
			txn := 0
			for i < len(script) {
				n := 1 + (i % 4)
				end := i + n
				if end > len(script) {
					end = len(script)
				}
				tx := tm.Begin(nil)
				for _, s := range script[i:end] {
					if s.read {
						v, err := tx.Read(vars[s.v])
						if err != nil {
							return false
						}
						reads = append(reads, v)
					} else if err := tx.Write(vars[s.v], s.val); err != nil {
						return false
					}
				}
				txn++
				if txn%5 == 0 {
					tx.Abort()
				} else if err := tx.Commit(); err != nil {
					return false
				}
				i = end
			}
			var final []uint64
			for _, v := range vars {
				x, err := core.ReadVar(tm, nil, v)
				if err != nil {
					return false
				}
				final = append(final, x)
			}
			results = append(results, reads)
			finals = append(finals, final...)
		}
		// All engines must agree with the first.
		for e := 1; e < len(results); e++ {
			if len(results[e]) != len(results[0]) {
				return false
			}
			for i := range results[0] {
				if results[e][i] != results[0][i] {
					return false
				}
			}
		}
		per := len(finals) / len(results)
		for e := 1; e < len(results); e++ {
			for i := 0; i < per; i++ {
				if finals[e*per+i] != finals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSimDeterminism: the simulator with a fixed seed must produce an
// identical step sequence on every run — the property the exhaustive
// explorers and figure regenerators rely on.
func TestSimDeterminism(t *testing.T) {
	run := func() []string {
		env := sim.New()
		tm := core.Recorded(dstm.New(dstm.WithEnv(env)), env.Recorder())
		x := tm.NewVar("x", 0)
		y := tm.NewVar("y", 0)
		for i := 0; i < 3; i++ {
			env.Spawn(func(p *sim.Proc) {
				_ = core.Run(tm, p, func(tx core.Tx) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					if err := tx.Write(y, v+1); err != nil {
						return err
					}
					return tx.Write(x, v+1)
				}, core.MaxAttempts(30))
			})
		}
		h := env.Run(sim.Random(99))
		var steps []string
		for _, s := range h.Steps {
			steps = append(steps, fmt.Sprintf("%v/%v %s obj%d", s.Proc, s.Tx, s.Name, int(s.Obj)))
		}
		return steps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at step %d: %q vs %q", i, a[i], b[i])
		}
	}
	_ = model.NoTx
}
