// Benchmarks regenerating the performance side of the experiment suite
// (see DESIGN.md §4 and EXPERIMENTS.md). Mapping:
//
//	BenchmarkBankTransfer        — E8a (engine scaling on the bank workload)
//	BenchmarkReadMix             — E8b (read-ratio sensitivity)
//	BenchmarkDisjoint            — E8c (perfect-DAP scaling / hot-spot cost)
//	BenchmarkContentionManagers  — E8d (manager ablation)
//	BenchmarkValidationAblation  — E8e (opacity-validation ablation)
//	BenchmarkIntSet              — DSTM's original IntSet microbenchmark
//	BenchmarkFoConsensus         — fo-consensus base-object throughput
//	BenchmarkFig2Scenario        — E5 driver cost (figure regeneration)
//	BenchmarkValencyExplorer     — E4(b) explorer cost
//	BenchmarkAlg2                — Algorithm 2's deliberate inefficiency
//	BenchmarkSkipList            — logarithmic sorted-set workload
//	BenchmarkEarlyRelease        — DSTM early-release ablation
//
// Run: go test -bench=. -benchmem .
package oftm_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	oftm "repro"
	"repro/internal/adversary"
	"repro/internal/base"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/sim"
)

// runThreads splits b.N across exactly `threads` goroutines. (The
// obvious b.SetParallelism(threads)+RunParallel combination runs
// threads*GOMAXPROCS workers, so "threads=N" labels would lie.)
func runThreads(b *testing.B, threads int, fn func(threadID int, rng *rand.Rand, iters int)) {
	b.Helper()
	bench.SplitThreads(b.N, threads, fn)
}

// benchEngines are the raw-mode engines for the throughput benchmarks;
// Algorithm 2 is benchmarked separately (BenchmarkAlg2) because of its
// intentional cost profile.
func benchEngines() []bench.Engine {
	var out []bench.Engine
	for _, e := range bench.Engines() {
		if e.Name != "alg2" {
			out = append(out, e)
		}
	}
	return out
}

func threadCounts() []int { return []int{1, 2, 4, 8} }

// BenchmarkBankTransfer: random transfers over 8 accounts (E8a).
func BenchmarkBankTransfer(b *testing.B) {
	for _, e := range benchEngines() {
		for _, th := range threadCounts() {
			b.Run(fmt.Sprintf("%s/threads=%d", e.Name, th), func(b *testing.B) {
				tm := e.Raw()
				bank := oftm.NewBank(tm, 8, 1000)
				b.ResetTimer()
				runThreads(b, th, func(_ int, rng *rand.Rand, iters int) {
					for i := 0; i < iters; i++ {
						from := rng.Intn(8)
						to := (from + 1 + rng.Intn(7)) % 8
						if err := bank.Transfer(nil, from, to, 1); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkReadMix: 64 variables, varying read percentage (E8b).
func BenchmarkReadMix(b *testing.B) {
	for _, e := range benchEngines() {
		for _, pct := range []int{0, 50, 90} {
			b.Run(fmt.Sprintf("%s/reads=%d", e.Name, pct), func(b *testing.B) {
				tm := e.Raw()
				vars := make([]oftm.Var, 64)
				for i := range vars {
					vars[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
				}
				var seq atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(seq.Add(1)))
					for pb.Next() {
						v := vars[rng.Intn(len(vars))]
						if rng.Intn(100) < pct {
							if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
								_, err := tx.Read(v)
								return err
							}); err != nil {
								b.Fatal(err)
							}
							continue
						}
						if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
							x, err := tx.Read(v)
							if err != nil {
								return err
							}
							return tx.Write(v, x+1)
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkDisjoint: each goroutine increments a private variable —
// perfect disjoint access. Scaling differences between engines expose
// the shared-metadata "hot spots" discussed in §1 (E8c).
func BenchmarkDisjoint(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.Name, func(b *testing.B) {
			tm := e.Raw()
			const slots = 64
			vars := make([]oftm.Var, slots)
			for i := range vars {
				vars[i] = tm.NewVar(fmt.Sprintf("p%d", i), 0)
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				v := vars[int(next.Add(1))%slots]
				for pb.Next() {
					if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
						x, err := tx.Read(v)
						if err != nil {
							return err
						}
						return tx.Write(v, x+1)
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkContentionManagers: DSTM on a hot 4-account bank (E8d).
func BenchmarkContentionManagers(b *testing.B) {
	managers := map[string]oftm.ContentionManager{
		"aggressive": oftm.Aggressive,
		"polite":     oftm.Polite,
		"karma":      oftm.Karma,
		"timestamp":  oftm.Timestamp,
	}
	for name, m := range managers {
		b.Run(name, func(b *testing.B) {
			tm := oftm.NewDSTM(oftm.WithManager(m))
			bank := oftm.NewBank(tm, 4, 1000)
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.Add(1)))
				for pb.Next() {
					from := rng.Intn(4)
					to := (from + 1 + rng.Intn(3)) % 4
					if err := bank.Transfer(nil, from, to, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkValidationAblation: DSTM validate-on-read (opaque) vs
// validate-at-commit (serializable only), read-heavy workload (E8e).
func BenchmarkValidationAblation(b *testing.B) {
	variants := map[string]func() oftm.TM{
		"validate-on-read":   func() oftm.TM { return oftm.NewDSTM() },
		"validate-at-commit": func() oftm.TM { return oftm.NewDSTM(oftm.ValidateAtCommitOnly()) },
	}
	for name, mk := range variants {
		b.Run(name, func(b *testing.B) {
			tm := mk()
			vars := make([]oftm.Var, 16)
			for i := range vars {
				vars[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					// A long read-only transaction: validation cost is
					// quadratic in reads when validating per read.
					if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
						for _, v := range vars {
							if _, err := tx.Read(v); err != nil {
								return err
							}
						}
						return nil
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkReadHeavy: one transaction reading R distinct variables with
// no concurrent writers (E8f). Per-read read-set validation makes this
// O(R²) base-object work; commit-counter (epoch) validation brings the
// quiescent path down to O(R).
func BenchmarkReadHeavy(b *testing.B) {
	for _, e := range benchEngines() {
		for _, r := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/reads=%d", e.Name, r), func(b *testing.B) {
				tm := e.Raw()
				vars := make([]oftm.Var, r)
				for i := range vars {
					vars[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
						for _, v := range vars {
							if _, err := tx.Read(v); err != nil {
								return err
							}
						}
						return nil
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkContendedReadHeavy: 256-read transactions while a background
// writer commits continuously to a disjoint variable (E8g). With
// per-variable versioned validation the readers' cost should stay close
// to BenchmarkReadHeavy; the global-epoch and full-scan ablations are
// measured in-process by `oftm-bench -exp E8`.
func BenchmarkContendedReadHeavy(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.Name, func(b *testing.B) {
			w := bench.ContendedReadHeavy(256)
			tm := e.Raw()
			op := w.Setup(tm)
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				w.Background(tm, stop)
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op(0, i, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}

// BenchmarkSmallTxAllocs: allocation footprint of a small (≤ 8 vars)
// uncontended transaction — 4 reads and 2 writes. The inline read/write
// set representation should keep allocs/op flat.
func BenchmarkSmallTxAllocs(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.Name, func(b *testing.B) {
			tm := e.Raw()
			vars := make([]oftm.Var, 6)
			for i := range vars {
				vars[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
					var sum uint64
					for _, v := range vars[:4] {
						x, err := tx.Read(v)
						if err != nil {
							return err
						}
						sum += x
					}
					if err := tx.Write(vars[4], sum); err != nil {
						return err
					}
					return tx.Write(vars[5], sum+1)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIntSet: the DSTM paper's linked-list set microbenchmark:
// 90% lookups, 10% updates on a 64-key range.
func BenchmarkIntSet(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.Name, func(b *testing.B) {
			tm := e.Raw()
			set := oftm.NewIntSet(tm)
			for k := uint64(0); k < 64; k += 2 {
				if _, err := set.Insert(nil, k); err != nil {
					b.Fatal(err)
				}
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.Add(1)))
				for pb.Next() {
					k := uint64(rng.Intn(64))
					switch r := rng.Intn(100); {
					case r < 90:
						if _, err := set.Contains(nil, k); err != nil {
							b.Fatal(err)
						}
					case r < 95:
						if _, err := set.Insert(nil, k); err != nil {
							b.Fatal(err)
						}
					default:
						if _, err := set.Remove(nil, k); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}

// BenchmarkFoConsensus: raw propose throughput on an already-decided
// fo-consensus object (the common fast path in Algorithm 2).
func BenchmarkFoConsensus(b *testing.B) {
	f := base.NewFoCons(nil, "f", base.NeverAbort, 1)
	f.Propose(nil, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.Propose(nil, 9); got != 7 {
			b.Fatal("agreement broke")
		}
	}
}

// BenchmarkFig2Scenario: full Figure 2 sweep on DSTM (one complete
// regeneration of the paper's figure per iteration).
func BenchmarkFig2Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := adversary.RunFig2(func(env *sim.Env) core.TM {
			return dstm.New(dstm.WithEnv(env))
		}, 4)
		if rep.CriticalStep < 0 {
			b.Fatal("no critical step")
		}
	}
}

// BenchmarkValencyExplorer: bounded bivalence search (Theorem 9
// adversary), depth 8.
func BenchmarkValencyExplorer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := adversary.ExploreValency([]uint64{0, 1, 1}, 8)
		if rep.SustainedDepth != 8 {
			b.Fatal("bivalence lost")
		}
	}
}

// BenchmarkAlg2: single-threaded increments on the paper's Algorithm 2
// — the deliberate inefficiency of the equivalence construction,
// quantified (compare with any engine in BenchmarkDisjoint).
func BenchmarkAlg2(b *testing.B) {
	tm := oftm.NewAlg2()
	x := tm.NewVar("x", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			return tx.Write(x, v+1)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkipList: logarithmic sorted-set workload, 90% lookups.
func BenchmarkSkipList(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.Name, func(b *testing.B) {
			tm := e.Raw()
			s := oftm.NewSkipList(tm, 8)
			for k := uint64(0); k < 256; k += 2 {
				if _, err := s.Insert(nil, k); err != nil {
					b.Fatal(err)
				}
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seq.Add(1)))
				for pb.Next() {
					k := uint64(rng.Intn(256))
					switch r := rng.Intn(100); {
					case r < 90:
						if _, err := s.Contains(nil, k); err != nil {
							b.Fatal(err)
						}
					case r < 95:
						if _, err := s.Insert(nil, k); err != nil {
							b.Fatal(err)
						}
					default:
						if _, err := s.Remove(nil, k); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}

// BenchmarkEarlyRelease: long list traversals with a head-churning
// writer — DSTM with and without early release. Early release should
// keep tail lookups from retrying.
func BenchmarkEarlyRelease(b *testing.B) {
	variants := map[string]func(tm oftm.TM) *oftm.IntSet{
		"plain":         oftm.NewIntSet,
		"early-release": oftm.NewIntSetEarlyRelease,
	}
	for name, mk := range variants {
		b.Run(name, func(b *testing.B) {
			tm := oftm.NewDSTM()
			s := mk(tm)
			for k := uint64(1); k <= 128; k++ {
				if _, err := s.Insert(nil, k); err != nil {
					b.Fatal(err)
				}
			}
			stop := make(chan struct{})
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, _ = s.Remove(nil, 1)
					_, _ = s.Insert(nil, 1)
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Contains(nil, 128); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
		})
	}
}

// BenchmarkKV: the serving-stack workloads (E9) — sharded kv store
// throughput by shard count (uniform keys) and the multi-key batch
// mixes at 8 shards. The s1-vs-s8 pair is the disjoint-access
// partitioning claim: constant per-shard capacity, so more shards mean
// shorter chains and rarer same-shard conflicts.
func BenchmarkKV(b *testing.B) {
	for _, e := range benchEngines() {
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("uniform/%s/shards=%d", e.Name, shards), func(b *testing.B) {
				w := bench.KVUniform(shards)
				op := w.Setup(e.Raw())
				b.ResetTimer()
				runThreads(b, 8, func(t int, rng *rand.Rand, iters int) {
					for i := 0; i < iters; i++ {
						if err := op(t, i, rng); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
	for _, e := range benchEngines() {
		for _, w := range []bench.Workload{bench.KVZipfian(8), bench.KVTxn(8, 4), bench.KVSnapshot(8, 8)} {
			b.Run(fmt.Sprintf("%s/%s", w.Name, e.Name), func(b *testing.B) {
				op := w.Setup(e.Raw())
				b.ResetTimer()
				runThreads(b, 8, func(t int, rng *rand.Rand, iters int) {
					for i := 0; i < iters; i++ {
						if err := op(t, i, rng); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}
