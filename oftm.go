// Package oftm is the public face of the reproduction of "On
// Obstruction-Free Transactions" (Guerraoui & Kapałka, SPAA 2008): a
// family of software transactional memory engines sharing one API —
//
//   - NewDSTM: the DSTM-style obstruction-free STM (revocable CAS
//     ownership, invisible validated reads, contention managers);
//   - NewAlg2: the paper's Algorithm 2, an OFTM built from fail-only
//     consensus objects and registers only;
//   - NewNZTM: a zero-indirection OFTM (eager in-place writes with undo
//     logs, NZTM-style);
//   - NewTwoPhaseLocking, NewTL2, NewCoarseLock: the lock-based
//     baselines the paper contrasts with (strictly
//     disjoint-access-parallel, global-clock, and global-lock
//     respectively);
//
// plus the simulation substrate that runs any engine under a
// step-level adversarial scheduler, the checkers for serializability /
// opacity / obstruction-freedom / strict disjoint-access-parallelism,
// and transactional data structures (counter, bank, set, map, queue).
//
// Quick start:
//
//	tm := oftm.NewDSTM()
//	x := tm.NewVar("x", 0)
//	err := oftm.Atomically(tm, func(tx oftm.Tx) error {
//	    v, err := tx.Read(x)
//	    if err != nil {
//	        return err
//	    }
//	    return tx.Write(x, v+1)
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package oftm

import (
	"repro/internal/alg2"
	"repro/internal/base"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/dstm"
	"repro/internal/kv"
	"repro/internal/locktm"
	"repro/internal/model"
	"repro/internal/nztm"
	"repro/internal/sim"
)

// Core transactional API, re-exported from the engine-generic layer.
type (
	// TM is a software transactional memory engine.
	TM = core.TM
	// Tx is one transaction (single-goroutine use).
	Tx = core.Tx
	// Var is a transactional variable holding a uint64 word.
	Var = core.Var
	// RunOption configures Atomically / Run retries.
	RunOption = core.RunOption
	// TxID identifies a transaction T_{i,k}.
	TxID = model.TxID
	// Status is live / committed / aborted.
	Status = model.Status
)

// ErrAborted is returned by transactional operations whose transaction
// has been (forcefully or voluntarily) aborted.
var ErrAborted = core.ErrAborted

// MaxAttempts bounds Atomically's retries.
func MaxAttempts(n int) RunOption { return core.MaxAttempts(n) }

// Atomically runs fn in a transaction on tm, retrying forceful aborts,
// in raw mode (outside the simulator). It is the standard application
// entry point.
func Atomically(tm TM, fn func(Tx) error, opts ...RunOption) error {
	return core.Run(tm, nil, fn, opts...)
}

// Simulation substrate, for deterministic schedules and checking.
type (
	// SimEnv is a simulated shared-memory environment (see internal/sim).
	SimEnv = sim.Env
	// Proc is a simulated process; engine operations take it so steps can
	// be scheduled and recorded. nil means raw mode.
	Proc = sim.Proc
)

// NewSim returns a fresh simulation environment.
func NewSim() *SimEnv { return sim.New() }

// Scheduler decides which simulated process steps next.
type Scheduler = sim.Scheduler

// RoundRobin grants steps cyclically.
func RoundRobin() Scheduler { return sim.RoundRobin() }

// RandomSchedule grants steps uniformly at random (seeded).
func RandomSchedule(seed int64) Scheduler { return sim.Random(seed) }

// Solo grants every step to one process — the paper's
// step-contention-free execution for that process.
func Solo(proc int) Scheduler { return sim.Solo(model.ProcID(proc)) }

// AtomicallyOn is Atomically for a simulated process.
func AtomicallyOn(tm TM, p *Proc, fn func(Tx) error, opts ...RunOption) error {
	return core.Run(tm, p, fn, opts...)
}

// ContentionManager decides conflicts in DSTM (see internal/cm).
type ContentionManager = cm.Manager

// The stock contention managers.
var (
	Aggressive ContentionManager = cm.Aggressive{}
	Polite     ContentionManager = cm.Polite{}
	Karma      ContentionManager = cm.Karma{}
	Timestamp  ContentionManager = cm.Timestamp{}
)

// NewDSTM returns the DSTM-style OFTM with the Polite manager. Use
// options to change the manager or attach a simulation environment.
func NewDSTM(opts ...EngineOption) TM {
	var c engineConfig
	for _, o := range opts {
		o(&c)
	}
	var dopts []dstm.Option
	if c.env != nil {
		dopts = append(dopts, dstm.WithEnv(c.env))
	}
	if c.mgr != nil {
		dopts = append(dopts, dstm.WithManager(c.mgr))
	}
	if c.validateAtCommit {
		dopts = append(dopts, dstm.ValidateAtCommitOnly())
	}
	if c.noEpoch {
		dopts = append(dopts, dstm.WithoutEpochValidation())
	}
	if c.globalEpoch {
		dopts = append(dopts, dstm.GlobalEpochOnly())
	}
	return dstm.New(dopts...)
}

// NewAlg2 returns the paper's Algorithm 2 OFTM (fo-consensus +
// registers). Deliberately impractical but fully functional.
func NewAlg2(opts ...EngineOption) TM {
	var c engineConfig
	for _, o := range opts {
		o(&c)
	}
	var aopts []alg2.Option
	if c.env != nil {
		aopts = append(aopts, alg2.WithEnv(c.env))
	}
	if c.adversarialFoCons {
		aopts = append(aopts, alg2.WithFoConsPolicy(base.AbortOnContention))
	}
	return alg2.New(aopts...)
}

// NewTwoPhaseLocking returns the strictly disjoint-access-parallel
// lock-based baseline (encounter-time exclusive two-phase locking).
func NewTwoPhaseLocking(opts ...EngineOption) TM {
	return locktm.NewTwoPhase(lockOpts(opts)...)
}

// NewTL2 returns the global-version-clock lock-based baseline.
func NewTL2(opts ...EngineOption) TM {
	return locktm.NewGlobalClock(lockOpts(opts)...)
}

// NewCoarseLock returns the single-global-lock baseline.
func NewCoarseLock(opts ...EngineOption) TM {
	return locktm.NewCoarse(lockOpts(opts)...)
}

// EngineOption configures the facade constructors.
type EngineOption func(*engineConfig)

type engineConfig struct {
	env               *sim.Env
	mgr               cm.Manager
	validateAtCommit  bool
	adversarialFoCons bool
	noEpoch           bool
	globalEpoch       bool
}

// InSim attaches the engine's base objects to a simulation environment.
func InSim(env *SimEnv) EngineOption {
	return func(c *engineConfig) { c.env = env }
}

// WithManager selects DSTM's contention manager.
func WithManager(m ContentionManager) EngineOption {
	return func(c *engineConfig) { c.mgr = m }
}

// ValidateAtCommitOnly selects DSTM's ablation variant (serializable
// but not opaque).
func ValidateAtCommitOnly() EngineOption {
	return func(c *engineConfig) { c.validateAtCommit = true }
}

// NoEpochValidation disables versioned read-set validation in DSTM and
// NZTM entirely, restoring the paper's reference O(R²)
// full-scan-per-read behavior — the ablation knob for experiment E8f.
func NoEpochValidation() EngineOption {
	return func(c *engineConfig) { c.noEpoch = true }
}

// WithGlobalEpochOnly selects the PR 1 all-or-nothing commit counter in
// DSTM and NZTM instead of per-variable versioned validation: one
// shared epoch word that any commit (or forceful abort) bumps, forcing
// every reader in the system into a full read-set rescan on its next
// access. Kept as the ablation control for the contended-read
// experiments (E8g) and the contended complexity tests.
func WithGlobalEpochOnly() EngineOption {
	return func(c *engineConfig) { c.globalEpoch = true }
}

// TMStats is a snapshot of engine-internal counters (commit epoch,
// forceful aborts).
type TMStats = core.TMStats

// StatsOf returns tm's TMStats when the engine exposes them.
func StatsOf(tm TM) (TMStats, bool) { return core.StatsOf(tm) }

// AdversarialFoCons makes Algorithm 2's fo-consensus objects use their
// abort licence maximally (testing the worst case the spec allows).
func AdversarialFoCons() EngineOption {
	return func(c *engineConfig) { c.adversarialFoCons = true }
}

func lockOpts(opts []EngineOption) []locktm.Option {
	var c engineConfig
	for _, o := range opts {
		o(&c)
	}
	var lopts []locktm.Option
	if c.env != nil {
		lopts = append(lopts, locktm.WithEnv(c.env))
	}
	return lopts
}

// Transactional data structures, re-exported.
type (
	// Counter is a shared transactional counter.
	Counter = ds.Counter
	// Bank is a fixed set of accounts with atomic transfers.
	Bank = ds.Bank
	// IntSet is a sorted linked-list set.
	IntSet = ds.IntSet
	// Hash is a fixed-bucket transactional map.
	Hash = ds.Hash
	// Queue is a bounded transactional FIFO.
	Queue = ds.Queue
)

// NewCounter allocates a counter on tm.
func NewCounter(tm TM, init uint64) *Counter { return ds.NewCounter(tm, init) }

// NewBank allocates n accounts holding initial each.
func NewBank(tm TM, n int, initial uint64) *Bank { return ds.NewBank(tm, n, initial) }

// NewIntSet allocates an empty sorted set.
func NewIntSet(tm TM) *IntSet { return ds.NewIntSet(tm) }

// NewHash allocates a map with the given bucket count.
func NewHash(tm TM, buckets int) *Hash { return ds.NewHash(tm, buckets) }

// NewQueue allocates a bounded FIFO.
func NewQueue(tm TM, capacity int) *Queue { return ds.NewQueue(tm, capacity) }

// NewNZTM returns the zero-indirection OFTM (NZTM-style [29]): eager
// in-place writes with undo logs, revocable ownership, invisible
// validated reads. The repository's second obstruction-free design
// point, contrasting with DSTM's locator indirection.
func NewNZTM(opts ...EngineOption) TM {
	var c engineConfig
	for _, o := range opts {
		o(&c)
	}
	var nopts []nztm.Option
	if c.env != nil {
		nopts = append(nopts, nztm.WithEnv(c.env))
	}
	if c.mgr != nil {
		nopts = append(nopts, nztm.WithManager(c.mgr))
	}
	if c.noEpoch {
		nopts = append(nopts, nztm.WithoutEpochValidation())
	}
	if c.globalEpoch {
		nopts = append(nopts, nztm.GlobalEpochOnly())
	}
	return nztm.New(nopts...)
}

// Serving layer: the sharded transactional key-value store
// (internal/kv), re-exported. The wire server above it lives in
// internal/server / cmd/oftm-server.
type (
	// KV is a sharded transactional key-value store: string keys
	// interned to handles, the key space partitioned across shards each
	// backed by its own hash index, atomic multi-key Txn batches, and a
	// validation-free read-only snapshot path (GetMulti).
	KV = kv.Store
	// KVOp is one operation of an atomic multi-key batch.
	KVOp = kv.Op
	// KVOpResult is one KVOp outcome.
	KVOpResult = kv.OpResult
	// KVStats is the store's per-shard counter snapshot.
	KVStats = kv.Stats
	// KVSession is a single-goroutine store handle (KV.NewSession): a
	// private key-handle cache plus reusable batch scratch, so repeated
	// operation shapes run allocation-free — one per connection/worker.
	KVSession = kv.Session
)

// The KVOp kinds.
const (
	KVGet    = kv.OpGet
	KVPut    = kv.OpPut
	KVDelete = kv.OpDelete
	KVCAS    = kv.OpCAS
)

// ErrKVCASFailed is returned by KV.Txn when a CAS guard did not match
// and the whole batch rolled back.
var ErrKVCASFailed = kv.ErrCASFailed

// NewKV allocates a sharded transactional key-value store on tm with
// the given shard count and hash buckets per shard.
func NewKV(tm TM, shards, bucketsPerShard int) *KV {
	return kv.New(tm, shards, bucketsPerShard)
}

// SkipList is a transactional sorted set with logarithmic search.
type SkipList = ds.SkipList

// NewSkipList allocates a skip list with the given level count.
func NewSkipList(tm TM, levels int) *SkipList { return ds.NewSkipList(tm, levels) }

// NewIntSetEarlyRelease allocates an IntSet whose traversals use
// DSTM-style early release when the engine supports it.
func NewIntSetEarlyRelease(tm TM) *IntSet { return ds.NewIntSetEarlyRelease(tm) }
