// Pipeline: producers push work items through a bounded transactional
// queue to consumers that aggregate results into a transactional hash
// map — two structures, one atomicity story: every hand-off is a
// transaction, so no item is lost or double-counted even though
// producers, consumers and a concurrent auditor all race.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	oftm "repro"
)

const (
	producers = 4
	consumers = 3
	perProd   = 500
	buckets   = 16
)

func main() {
	tm := oftm.NewDSTM()
	queue := oftm.NewQueue(tm, 32)
	counts := oftm.NewHash(tm, buckets)

	var produced, consumed atomic.Int64
	var wg sync.WaitGroup

	// Producers enqueue items tagged with their residue class mod 8.
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				item := uint64(p*perProd + i)
				for {
					ok, err := queue.Enqueue(nil, item)
					if err != nil {
						log.Fatal(err)
					}
					if ok {
						produced.Add(1)
						break
					}
				}
			}
		}()
	}

	// Consumers drain the queue and bump the per-class counter
	// atomically (read-modify-write on the hash map).
	done := make(chan struct{})
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				item, ok, err := queue.Dequeue(nil)
				if err != nil {
					log.Fatal(err)
				}
				if !ok {
					select {
					case <-done:
						// Producers are finished; exit once the queue is
						// drained (non-destructive check).
						n, err := queue.Len(nil)
						if err != nil {
							log.Fatal(err)
						}
						if n == 0 {
							return
						}
						continue
					default:
						continue
					}
				}
				class := item % 8
				// One transaction for the whole read-modify-write: two
				// consumers can never lose an increment.
				if err := counts.Update(nil, class, func(old uint64, _ bool) uint64 {
					return old + 1
				}); err != nil {
					log.Fatal(err)
				}
				consumed.Add(1)
			}
		}()
	}

	wg.Wait()
	close(done)
	cwg.Wait()

	// Audit: the per-class counters must sum to exactly the number of
	// items produced.
	var total uint64
	for class := uint64(0); class < 8; class++ {
		v, _, err := counts.Get(nil, class)
		if err != nil {
			log.Fatal(err)
		}
		total += v
		fmt.Printf("class %d: %5d items\n", class, v)
	}
	fmt.Printf("produced=%d consumed=%d aggregated=%d\n",
		produced.Load(), consumed.Load(), total)
	if total != uint64(producers*perProd) || consumed.Load() != int64(producers*perProd) {
		log.Fatal("pipeline lost or duplicated items — should be impossible")
	}
	fmt.Println("no items lost or duplicated across the transactional pipeline")
}
