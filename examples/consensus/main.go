// Consensus: the paper's Section 4 in action. Algorithm 1 turns any
// OFTM into a fail-only consensus object; combined with registers that
// solves 2-process consensus (Corollary 11: an OFTM's consensus number
// is 2). Here a pool of goroutine pairs elects winners through
// fo-consensus objects built over DSTM.
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"sync"

	oftm "repro"
	"repro/internal/base"
	"repro/internal/dstm"
	"repro/internal/focons"
)

func main() {
	// Part 1: fo-consensus from an OFTM (Algorithm 1), raw mode.
	// Many goroutines propose their id; exactly one value is decided,
	// and retries are allowed because fail-only proposes may abort
	// under contention.
	tm := dstm.New()
	f := focons.NewFromOFTM(tm)
	const n = 8
	results := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v := f.Propose(nil, uint64(i+1)); v != base.Bottom {
					results[i] = v
					return
				}
				// Aborted under contention: retry with the same value.
			}
		}()
	}
	wg.Wait()
	winner := results[0]
	for i, r := range results {
		if r != winner {
			log.Fatalf("agreement violated: goroutine %d decided %d, others %d", i, r, winner)
		}
	}
	fmt.Printf("fo-consensus over DSTM: %d goroutines all decided value %d\n", n, winner)

	// Part 2: wait-free 2-process consensus from fo-consensus and
	// registers, under a randomized step-level schedule in the
	// simulator — the construction behind Corollary 11.
	agree := 0
	const rounds = 20
	for seed := int64(0); seed < rounds; seed++ {
		env := oftm.NewSim()
		fc := base.NewFoCons(env, "F", base.AbortOnContention, seed)
		c := focons.NewTwoConsensus(env, fc)
		var d0, d1 uint64
		env.Spawn(func(p *oftm.Proc) { d0 = c.Decide(p, 0, 100) })
		env.Spawn(func(p *oftm.Proc) { d1 = c.Decide(p, 1, 200) })
		env.Run(oftm.RandomSchedule(seed))
		if d0 == d1 && (d0 == 100 || d0 == 200) {
			agree++
		}
	}
	fmt.Printf("2-process consensus from fo-consensus: %d/%d randomized schedules agreed\n",
		agree, rounds)
	if agree != rounds {
		log.Fatal("agreement/validity failed under some schedule")
	}
}
