// Quickstart for the serving stack: an in-process oftm-server on an
// ephemeral port, a pipelining client driving the line protocol, and
// the per-shard statistics the store keeps — the 60-second tour of
// internal/kv + internal/server.
//
//	go run ./examples/kvserver
//
// For a standalone deployment use the binary instead:
//
//	go run ./cmd/oftm-server -addr 127.0.0.1:7070 -engine nztm -shards 8
//	go run ./cmd/oftm-server -connect 127.0.0.1:7070 -conns 4 -ops 1000
package main

import (
	"fmt"
	"log"

	"repro/internal/server"
)

func main() {
	// A server is one engine + one sharded store + one listener. The
	// engine is chosen by name; every STM engine in the repository
	// serves the same protocol.
	srv, err := server.New(server.Config{
		Addr:    "127.0.0.1:0", // ephemeral port
		Engine:  "nztm",
		Shards:  8,
		Buckets: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("serving on %s\n\n", srv.Addr())

	cl, err := server.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Single-key requests. Consecutive pipelined GET/SET/DEL requests
	// are folded into one engine transaction server-side.
	show := func(reqs ...string) {
		resps, err := cl.Do(reqs...)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range reqs {
			fmt.Printf("  > %-22s < %s\n", r, resps[i])
		}
	}
	fmt.Println("single-key requests (pipelined):")
	show("SET balance:alice 100", "SET balance:bob 100", "GET balance:alice")

	// CAS is the optimistic update primitive.
	fmt.Println("\ncompare-and-swap:")
	show("CAS balance:alice 100 90", "CAS balance:alice 100 80")

	// MULTI..EXEC is an atomic cross-shard batch; a failed CAS guard
	// rolls the whole batch back, so this transfer can never half-apply.
	fmt.Println("\natomic multi-key transfer (MULTI..EXEC):")
	show("MULTI", "CAS balance:alice 90 80", "CAS balance:bob 100 110", "EXEC")
	show("GET balance:alice", "GET balance:bob")

	fmt.Println("\nstats:")
	show("LEN", "STATS")

	st := srv.Store().Stats()
	fmt.Printf("\nstore: %d committed txns, cross-shard ratio %.2f\n",
		st.Txns, st.CrossShardRatio())
	for i, sh := range st.Shards {
		if sh.Ops > 0 {
			fmt.Printf("  shard %d: %d ops\n", i, sh.Ops)
		}
	}
}
