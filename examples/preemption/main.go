// Preemption: the paper's real-time motivation for obstruction-freedom
// (§1) made concrete. A low-priority transaction is suspended mid-
// flight while owning a t-variable — exactly what happens when a thread
// is preempted, page-faults, or is descheduled. Under the
// obstruction-free DSTM the high-priority work forcefully aborts the
// owner and proceeds; under two-phase locking it starves behind the
// suspended lock holder.
//
//	go run ./examples/preemption
package main

import (
	"errors"
	"fmt"

	oftm "repro"
)

func main() {
	fmt.Println("A low-priority transaction acquires x and is then suspended forever.")
	fmt.Println("A high-priority transaction arrives and needs x.")
	fmt.Println()

	demo("obstruction-free DSTM", func(env *oftm.SimEnv) oftm.TM {
		return oftm.NewDSTM(oftm.InSim(env))
	})
	demo("two-phase locking", func(env *oftm.SimEnv) oftm.TM {
		return oftm.NewTwoPhaseLocking(oftm.InSim(env))
	})
}

func demo(name string, mk func(*oftm.SimEnv) oftm.TM) {
	env := oftm.NewSim()
	tm := mk(env)
	x := tm.NewVar("x", 0)

	// p1: low priority. Begins an update of x and never gets another
	// time slice (the scheduler below suspends it after a few steps).
	env.Spawn(func(p *oftm.Proc) {
		tx := tm.Begin(p)
		_ = tx.Write(x, 1)
		_ = tx.Commit() // never reached
	})

	// p2: high priority. Must make progress regardless of p1's fate.
	var highErr error
	var observed uint64
	env.Spawn(func(p *oftm.Proc) {
		highErr = oftm.AtomicallyOn(tm, p, func(tx oftm.Tx) error {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			observed = v
			return tx.Write(x, v+100)
		}, oftm.MaxAttempts(10))
	})

	// Schedule: p1 runs just long enough to take ownership of x, then
	// p2 runs alone — p1 is effectively preempted at the worst moment.
	env.Run(scriptLowThenHigh())

	switch {
	case highErr == nil:
		fmt.Printf("%-22s high-priority transaction COMMITTED (read x=%d, wrote x=%d)\n",
			name+":", observed, observed+100)
	case errors.Is(highErr, oftm.ErrAborted):
		fmt.Printf("%-22s high-priority transaction STARVED behind the preempted owner\n", name+":")
	default:
		fmt.Printf("%-22s unexpected error: %v\n", name+":", highErr)
	}
}

// scriptLowThenHigh grants p1 three steps (enough to own x on both
// engines), then runs p2 to completion.
func scriptLowThenHigh() oftm.Scheduler {
	return scripted{}
}

type scripted struct{}

func (scripted) Pick(waiting []*oftm.Proc, env *oftm.SimEnv) int {
	// Grant p1 its first 3 steps, then p2 exclusively.
	if env.TotalSteps() < 3 {
		for i, p := range waiting {
			if p.ID() == 1 {
				return i
			}
		}
	}
	for i, p := range waiting {
		if p.ID() == 2 {
			return i
		}
	}
	return -1
}
