// Quickstart: concurrent bank transfers on the DSTM-style
// obstruction-free STM, the 30-second tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	oftm "repro"
)

func main() {
	tm := oftm.NewDSTM() // obstruction-free STM, Polite contention manager

	const accounts = 16
	const initial = 100
	bank := oftm.NewBank(tm, accounts, initial)

	// 8 goroutines fire random transfers concurrently. Every transfer is
	// one atomic transaction; forceful aborts are retried by the library.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 1000; i++ {
				from := rng.Intn(accounts)
				to := (from + 1 + rng.Intn(accounts-1)) % accounts
				if err := bank.Transfer(nil, from, to, uint64(rng.Intn(10)+1)); err != nil {
					log.Fatalf("transfer: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	// Money is conserved: the atomic sum over all accounts is unchanged.
	total, err := bank.Total(nil)
	if err != nil {
		log.Fatalf("total: %v", err)
	}
	fmt.Printf("after 8000 concurrent transfers: total = %d (expected %d)\n",
		total, accounts*initial)
	if total != accounts*initial {
		log.Fatal("conservation violated — this should be impossible")
	}

	// Raw transactional access, without the data-structure sugar:
	x := tm.NewVar("x", 0)
	if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		return tx.Write(x, v+42)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("the answer is stored transactionally:", mustRead(tm, x))
}

func mustRead(tm oftm.TM, v oftm.Var) uint64 {
	var out uint64
	if err := oftm.Atomically(tm, func(tx oftm.Tx) error {
		x, err := tx.Read(v)
		out = x
		return err
	}); err != nil {
		log.Fatal(err)
	}
	return out
}
