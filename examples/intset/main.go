// IntSet: the linked-list set microbenchmark from the DSTM paper, run
// on every engine in the repository with the same code — the point of
// the engine-generic TM interface. Prints a small throughput and
// consistency report.
//
//	go run ./examples/intset
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	oftm "repro"
)

const (
	workers  = 8
	opsEach  = 2000
	keyRange = 128
)

func main() {
	engines := []struct {
		name string
		mk   func() oftm.TM
	}{
		{"dstm", func() oftm.TM { return oftm.NewDSTM() }},
		{"nztm", func() oftm.TM { return oftm.NewNZTM() }},
		{"2pl", func() oftm.TM { return oftm.NewTwoPhaseLocking() }},
		{"tl2", func() oftm.TM { return oftm.NewTL2() }},
		{"coarse", func() oftm.TM { return oftm.NewCoarseLock() }},
	}
	fmt.Printf("%-8s %12s %8s %s\n", "engine", "ops/s", "size", "sorted")
	for _, e := range engines {
		run(e.name, e.mk())
	}
}

func run(name string, tm oftm.TM) {
	set := oftm.NewIntSet(tm)
	// Pre-populate half the key range.
	for k := uint64(0); k < keyRange; k += 2 {
		if _, err := set.Insert(nil, k); err != nil {
			log.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				k := uint64(rng.Intn(keyRange))
				var err error
				switch r := rng.Intn(100); {
				case r < 80: // 80% lookups
					_, err = set.Contains(nil, k)
				case r < 90:
					_, err = set.Insert(nil, k)
				default:
					_, err = set.Remove(nil, k)
				}
				if err != nil {
					log.Fatalf("%s: %v", name, err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Atomic snapshot: must be sorted and duplicate-free whatever the
	// interleaving was.
	snap, err := set.Snapshot(nil)
	if err != nil {
		log.Fatal(err)
	}
	sorted := sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] })
	for i := 1; i < len(snap); i++ {
		if snap[i] == snap[i-1] {
			sorted = false
		}
	}
	fmt.Printf("%-8s %12.0f %8d %v\n",
		name, float64(workers*opsEach)/elapsed.Seconds(), len(snap), sorted)
}
