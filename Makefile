#!/usr/bin/make -f

########################################
### Build / test / verify

GO ?= go
PKGS = ./...

build:
	@echo "Building all packages and commands..."
	@$(GO) build $(PKGS)

test:
	@echo "Running the full test suite (conformance, safety campaigns, checkers, adversary scenarios)..."
	@$(GO) test $(PKGS)

test-race:
	@echo "Running the full test suite under the race detector..."
	@$(GO) test -race $(PKGS)

vet:
	@echo "Vetting..."
	@$(GO) vet $(PKGS)

check: build vet test

########################################
### Benchmarks / experiments

BENCHTIME ?= 1s

bench:
	@echo "Running the Go benchmark suite (ns/op + allocs/op)..."
	@$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) .

bench-readheavy:
	@echo "Read-heavy benchmark (commit-epoch validation hot path)..."
	@$(GO) test -run '^$$' -bench BenchmarkReadHeavy -benchmem -benchtime $(BENCHTIME) .

experiments:
	@echo "Regenerating the E1..E16 experiment tables..."
	@$(GO) run ./cmd/oftm-bench

BENCH_JSON ?= BENCH_PR10.json
bench-json:
	@echo "Measuring the perf-tracking grid into $(BENCH_JSON)..."
	@$(GO) run ./cmd/oftm-bench -json $(BENCH_JSON)

# Each BENCH_PRn.json is the median of three runs per record, measured
# on that PR session's container; ns/op baselines only gate honestly
# when both sides ran on the same machine, so the diff against the
# previous PR's file is advisory across containers and binding within
# one. Records new since the baseline are skipped with a notice.
BASELINE ?= BENCH_PR9.json
bench-diff:
	@echo "Measuring the perf-tracking grid into $(BENCH_JSON) and diffing against $(BASELINE) (fails on >25% ns/op regressions and on allocs/op above the baseline allowance — zero-alloc records must stay zero; workloads new since the baseline are skipped with a notice)..."
	@$(GO) run ./cmd/oftm-bench -json $(BENCH_JSON) -baseline $(BASELINE)

########################################
### Serving stack (kv + wire server)

kv-smoke:
	@echo "Running every kv-* workload briefly..."
	@$(GO) run ./cmd/oftm-bench -kvsmoke

bench-server:
	@echo "End-to-end loopback server benchmark (pipelined GET/SET; budget: <= 1 alloc/req on the byte path)..."
	@$(GO) test -run '^$$' -bench BenchmarkServer -benchmem -benchtime $(BENCHTIME) ./internal/bench

servebench:
	@echo "Running experiments E10 (byte wire path vs the preserved PR 3 path), E11 (WAL durability bill), E13 (serving-runtime scaling grid, 2 loadgen procs), E14 (replication follower-read scaling) and E15 (async reply path + slow-reader soak)..."
	@$(GO) run ./cmd/oftm-bench -servebench

server-scale-smoke:
	@echo "E15 smoke: truncated scaling grid (8/64 conns, 2 workers, 2 loadgen procs) with the allocs/req <= 1 gate, plus the slow-reader soak row..."
	@$(GO) run ./cmd/oftm-bench -exp E15 -procs 2 -scale-conns 8,64 -scale-workers 2 | tee /tmp/oftm-scale-smoke.out
	@awk '/^(worker|goroutine) / { if ($$8 == "" || $$8+0 > 1) { print "allocs/req gate failed: " $$0; bad = 1 } } END { if (bad) exit 1; print "allocs/req <= 1 at every smoke grid point" }' /tmp/oftm-scale-smoke.out
	@awk '/^soak-worker / { seen = 1; if ($$5 == "" || $$5+0 < 1 || $$6+0 != 0) { print "soak gate failed (want bp pauses >= 1, kills = 0): " $$0; bad = 1 } } END { if (!seen) { print "soak gate: no soak-worker row"; exit 1 }; if (bad) exit 1; print "slow reader held by backpressure (pauses >= 1, kills = 0)" }' /tmp/oftm-scale-smoke.out

replication-smoke:
	@echo "Replication unit suites under the race detector (WAL tail-follow, repl stream, follower reads, kill-primary promote)..."
	@$(GO) test -race -count=1 ./internal/wal ./internal/repl
	@$(GO) test -race -count=1 -run 'TestReplicaFollowerReads|TestKillPrimaryPromoteReplica' ./internal/server
	@echo "Binary-level smoke: primary + 1 replica, mixed load, catch-up, SIGUSR1 promote, load at the promoted node..."
	@$(GO) build -o /tmp/oftm-repl-smoke ./cmd/oftm-server
	@rm -rf /tmp/oftm-repl-smoke-p /tmp/oftm-repl-smoke-r; \
	/tmp/oftm-repl-smoke -addr 127.0.0.1:7791 -wal-dir /tmp/oftm-repl-smoke-p -fsync always -replicate-addr 127.0.0.1:7792 & \
	PRV=$$!; sleep 1; \
	/tmp/oftm-repl-smoke -addr 127.0.0.1:7793 -wal-dir /tmp/oftm-repl-smoke-r -replica-of 127.0.0.1:7792 & \
	REP=$$!; sleep 1; \
	/tmp/oftm-repl-smoke -connect 127.0.0.1:7791 -conns 4 -ops 500; RC1=$$?; \
	sleep 1; \
	kill -INT $$PRV; wait $$PRV; \
	kill -USR1 $$REP; sleep 1; \
	/tmp/oftm-repl-smoke -connect 127.0.0.1:7793 -conns 4 -ops 500; RC2=$$?; \
	kill -INT $$REP; wait $$REP; SRC=$$?; \
	rm -rf /tmp/oftm-repl-smoke /tmp/oftm-repl-smoke-p /tmp/oftm-repl-smoke-r; \
	echo "primary-load exit: $$RC1, promoted-load exit: $$RC2, replica server exit: $$SRC"; \
	[ $$RC1 -eq 0 ] && [ $$RC2 -eq 0 ] && [ $$SRC -eq 0 ]

recovery-smoke:
	@echo "Vetting and running the crash/recovery suite (kill-and-recover, torn tail, WAL unit tests)..."
	@$(GO) vet $(PKGS)
	@$(GO) test -count=1 -v -run 'TestKillAndRecover|TestWALRestartCycle|TestRecoveryHelperProcess' ./internal/server
	@$(GO) test -count=1 ./internal/wal

SERVER_ADDR ?= 127.0.0.1:7781
server-smoke: kv-smoke
	@echo "Building oftm-server and driving pipelined load through it..."
	@$(GO) build -o /tmp/oftm-server-smoke ./cmd/oftm-server
	@/tmp/oftm-server-smoke -addr $(SERVER_ADDR) -engine nztm -shards 8 & \
	SRV=$$!; sleep 1; \
	/tmp/oftm-server-smoke -connect $(SERVER_ADDR) -conns 4 -ops 250; RC=$$?; \
	kill -INT $$SRV; wait $$SRV; SRC=$$?; \
	rm -f /tmp/oftm-server-smoke; \
	echo "client exit: $$RC, server exit: $$SRC"; \
	[ $$RC -eq 0 ] && [ $$SRC -eq 0 ]

########################################
### Fault-injection sim campaign

# Knobs (also honored by `go test ./internal/campaign` via the
# -campaign.* flags): seeds swept, driver ops per crash run, and the
# probability the injected fault is a full crash vs a disk error.
SIM_SEEDS ?= 10
SEEDS ?= $(SIM_SEEDS)
SIM_OPS ?= 300
SIM_CRASH_PROB ?= 0.5

sim-multi-seed:
	@echo "Crash campaign over $(SEEDS) seeds (fail-stop, acked-writes-survive, recovery, serializability; failing seeds print an exact repro command)..."
	@$(GO) run ./cmd/oftm-campaign -mode crash -seeds $(SEEDS) -ops $(SIM_OPS) -crashprob $(SIM_CRASH_PROB)

sim-nondeterminism:
	@echo "Same-seed determinism battery (two crash runs byte-identical, dstm vs nztm identical, sim-mode runs identical, histories serializable)..."
	@$(GO) run ./cmd/oftm-campaign -mode nondet -seeds 4 -ops $(SIM_OPS) -crashprob $(SIM_CRASH_PROB)

sim-import-export:
	@echo "Snapshot import/export round-trip (export -> recover -> re-export must reproduce identical bytes)..."
	@$(GO) run ./cmd/oftm-campaign -mode import-export -seeds 8 -ops $(SIM_OPS)

sim-benchmark-invariants:
	@echo "Timing the invariant gate itself (one full crash run + recovery + checks per iteration)..."
	@$(GO) test -run '^$$' -bench BenchmarkInvariants -benchtime 20x ./internal/campaign

sim-smoke: sim-nondeterminism
	@echo "Campaign test wrappers under the race detector (10 seeds)..."
	@$(GO) test -race -count=1 ./internal/campaign -campaign.seeds=10

snapshot-smoke:
	@echo "Snapshot-chain suites under the race detector (chain cut/link/truncate, broken-chain refusal, bundle install)..."
	@$(GO) test -race -count=1 ./internal/wal
	@echo "Snapshot torture: crash inside the snapshot writer (between shard images and mid-manifest), recover, check acked writes + chain completeness..."
	@$(GO) run ./cmd/oftm-campaign -mode torture -seeds $(SEEDS) -ops $(SIM_OPS)
	@$(GO) test -race -count=1 -run 'TestSnapshotTorture|TestImportExport' ./internal/campaign -campaign.seeds=4
	@echo "Truncated E16 row (recovery-time bound; the binding >= 5x gate runs at 10M keys via 'make experiments')..."
	@OFTM_E16_KEYS=200000 $(GO) run ./cmd/oftm-bench -exp E16 | tee /tmp/oftm-snapshot-smoke.out
	@awk '/^E16 speedup:/ { seen = 1; if ($$3 + 0 < 1.5) { print "recovery speedup gate failed (want >= 1.5x at truncated scale): " $$0; bad = 1 } } END { if (!seen) { print "no E16 speedup line"; exit 1 }; if (bad) exit 1; print "incremental recovery held the truncated-scale bound" }' /tmp/oftm-snapshot-smoke.out

.PHONY: build test test-race vet check bench bench-readheavy experiments bench-json bench-diff kv-smoke bench-server servebench server-scale-smoke server-smoke replication-smoke recovery-smoke sim-multi-seed sim-nondeterminism sim-import-export sim-benchmark-invariants sim-smoke snapshot-smoke
