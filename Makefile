#!/usr/bin/make -f

########################################
### Build / test / verify

GO ?= go
PKGS = ./...

build:
	@echo "Building all packages and commands..."
	@$(GO) build $(PKGS)

test:
	@echo "Running the full test suite (conformance, safety campaigns, checkers, adversary scenarios)..."
	@$(GO) test $(PKGS)

test-race:
	@echo "Running the full test suite under the race detector..."
	@$(GO) test -race $(PKGS)

vet:
	@echo "Vetting..."
	@$(GO) vet $(PKGS)

check: build vet test

########################################
### Benchmarks / experiments

BENCHTIME ?= 1s

bench:
	@echo "Running the Go benchmark suite (ns/op + allocs/op)..."
	@$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) .

bench-readheavy:
	@echo "Read-heavy benchmark (commit-epoch validation hot path)..."
	@$(GO) test -run '^$$' -bench BenchmarkReadHeavy -benchmem -benchtime $(BENCHTIME) .

experiments:
	@echo "Regenerating the E1..E8 experiment tables..."
	@$(GO) run ./cmd/oftm-bench

BENCH_JSON ?= BENCH_PR2.json
bench-json:
	@echo "Measuring the perf-tracking grid into $(BENCH_JSON)..."
	@$(GO) run ./cmd/oftm-bench -json $(BENCH_JSON)

BASELINE ?= BENCH_PR1.json
bench-diff:
	@echo "Measuring the perf-tracking grid into $(BENCH_JSON) and diffing against $(BASELINE) (fails on >25% ns/op regressions)..."
	@$(GO) run ./cmd/oftm-bench -json $(BENCH_JSON) -baseline $(BASELINE)

.PHONY: build test test-race vet check bench bench-readheavy experiments bench-json bench-diff
